#include "ortho/block_gs.hpp"

#include "dense/blas3.hpp"
#include "dense/dd.hpp"
#include "ortho/intra.hpp"

#include <cassert>

namespace tsbo::ortho {

namespace {

/// r_prev += t_prev * r_diag;  r_diag := t_diag * r_diag.
/// The exact re-orthogonalization coefficient update (the paper's
/// Fig. 4b lines 5-6; Fig. 2b's "T + R" is its first-order
/// approximation — we apply the exact form everywhere).
void reortho_fixup(ConstMatrixView t_prev, ConstMatrixView t_diag,
                   MatrixView r_prev, MatrixView r_diag) {
  if (r_prev.cols > 0 && r_prev.rows > 0) {
    dense::gemm_nn(1.0, t_prev, r_diag, 1.0, r_prev);
  }
  dense::Matrix tmp(r_diag.rows, r_diag.cols);
  dense::gemm_nn(1.0, t_diag, r_diag, 0.0, tmp.view());
  dense::copy(tmp.view(), r_diag);
}

}  // namespace

void bcgs_project(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
                  MatrixView r_prev, const OverlapHook& overlap) {
  assert(r_prev.rows == q.cols && r_prev.cols == v.cols);
  if (q.cols == 0) {
    if (overlap) overlap();
    return;
  }
  block_dot(ctx, q, v, r_prev, overlap);
  block_update(ctx, q, r_prev, v);
}

void bcgs2(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
           MatrixView r_prev, MatrixView r_diag, IntraKind intra) {
  assert(r_diag.rows == v.cols && r_diag.cols == v.cols);
  const int breakdowns_before = ctx.cholesky_breakdowns;

  // First inter-block pass; the second pass's scratch allocation rides
  // in the reduce's overlap window (result-independent local work).
  dense::Matrix t_prev, t_diag;
  bcgs_project(ctx, q, v, r_prev, [&] {
    if (q.cols > 0) {
      t_prev = dense::Matrix(q.cols, v.cols);
      t_diag = dense::Matrix(v.cols, v.cols);
    }
  });

  // First intra-block factorization.
  switch (intra) {
    case IntraKind::kCholQR2:
      cholqr2(ctx, v, r_diag);
      break;
    case IntraKind::kHHQR:
      hhqr(ctx, v, r_diag);
      break;
    case IntraKind::kShiftedCholQR3:
      shifted_cholqr3(ctx, v, r_diag);
      break;
  }

  if (q.cols == 0) return;

  // Second inter-block pass + CholQR (paper Fig. 2b lines 10-15).
  // After a clean first pass kappa(V) = O(1), so the dd Gram buys no
  // stability here — drop to plain double (see ScopedGramPrecision).
  ScopedGramPrecision guard(ctx,
                            ctx.mixed_precision_gram &&
                                ctx.cholesky_breakdowns != breakdowns_before);
  bcgs_project(ctx, q, v, t_prev.view());
  cholqr(ctx, v, t_diag.view());
  reortho_fixup(t_prev.view(), t_diag.view(), r_prev, r_diag);
}

void bcgs_pip(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
              MatrixView r_prev, MatrixView r_diag,
              const OverlapHook& overlap) {
  assert(r_prev.rows == q.cols && r_prev.cols == v.cols);
  assert(r_diag.rows == v.cols && r_diag.cols == v.cols);
  const index_t nq = q.cols;
  const index_t s = v.cols;

  if (ctx.mixed_precision_gram) {
    // Mixed-precision BCGS-PIP: the fused Gram, the Pythagorean update
    // S = V^T V - r_prev^T r_prev, and the Cholesky all stay in
    // double-double — the subtraction is exactly where the condition
    // squaring bites (condition (5)), so rounding any of the three to
    // double would reintroduce the eps^{-1/2} cliff.  Still one fused
    // reduce.  r_prev is rounded for the working-precision update
    // V - Q r_prev; its products re-enter the dd subtraction exactly
    // via two_prod, keeping S consistent with the update actually
    // applied.
    dense::Matrix g_lo(nq + s, s);
    dense::Matrix g_hi(nq + s, s);
    dense::Matrix s_lo, s_hi;
    {
      // Pythagorean scratch allocation and caller-supplied trailing
      // work ride in the fused-reduce overlap window.
      PendingReduce pending =
          fused_gram_dd_ireduce(ctx, q, v, g_hi.view(), g_lo.view());
      s_lo = dense::Matrix(s, s);
      s_hi = dense::Matrix(s, s);
      if (overlap) overlap();
      pending.wait();
    }
    dense::dd_round(g_hi.view().block(0, 0, nq, s),
                    g_lo.view().block(0, 0, nq, s), r_prev);

    if (ctx.timers) ctx.timers->start("ortho/chol");
    if (nq > 0) {
      // r_prev^T r_prev on the threaded pair kernel, then one
      // elementwise dd subtraction from the V^T V block.
      dense::Matrix p_lo(s, s);
      dense::Matrix p_hi(s, s);
      dense::gemm_tn_dd(r_prev, r_prev, p_hi.view(), p_lo.view());
      for (index_t j = 0; j < s; ++j) {
        for (index_t i = 0; i < s; ++i) {
          const dense::dd acc =
              dense::dd_sub(dense::dd{g_hi(nq + i, j), g_lo(nq + i, j)},
                            dense::dd{p_hi(i, j), p_lo(i, j)});
          s_hi(i, j) = acc.hi;
          s_lo(i, j) = acc.lo;
        }
      }
    } else {
      dense::copy(g_hi.view().block(nq, 0, s, s), s_hi.view());
      dense::copy(g_lo.view().block(nq, 0, s, s), s_lo.view());
    }
    if (ctx.timers) ctx.timers->stop("ortho/chol");
    chol_factor_dd(ctx, s_hi.view(), s_lo.view(), "BCGS-PIP");
    dense::dd_round(s_hi.view(), s_lo.view(), r_diag);
  } else {
    // Single fused reduce via the split-phase pair, so bcgs_pip and
    // the pipelined begin/finish callers share one operation sequence
    // (bitwise-identical results either way).
    BcgsPipSplit split = bcgs_pip_begin(ctx, q, v);
    if (overlap) {
      overlap();
    } else {
      split.pending.no_overlap_credit();  // empty window
    }
    bcgs_pip_finish(ctx, split, q, v, r_prev, r_diag);
    return;
  }

  // V := (V - Q r_prev) r_diag^{-1} (Fig. 4a lines 3-4).
  block_update(ctx, q, r_prev, v);
  block_scale(ctx, r_diag, v);
}

BcgsPipSplit bcgs_pip_begin(OrthoContext& ctx, ConstMatrixView q,
                            ConstMatrixView v) {
  assert(!ctx.mixed_precision_gram &&
         "split BCGS-PIP is the plain-double path; use bcgs_pip for dd");
  BcgsPipSplit split;
  split.nq = q.cols;
  split.s = v.cols;
  // G = [Q, V]^T V (paper Fig. 4a line 1), issued split-phase so the
  // caller's work between begin and finish hides behind the modeled
  // reduce latency.
  split.g = dense::Matrix(split.nq + split.s, split.s);
  split.pending = fused_gram_ireduce(ctx, q, v, split.g.view());
  split.active = true;
  return split;
}

void bcgs_pip_finish(OrthoContext& ctx, BcgsPipSplit& split, ConstMatrixView q,
                     MatrixView v, MatrixView r_prev, MatrixView r_diag) {
  assert(split.active);
  const index_t nq = split.nq;
  const index_t s = split.s;
  assert(r_prev.rows == nq && r_prev.cols == s);
  assert(r_diag.rows == s && r_diag.cols == s && v.cols == s);
  split.pending.wait();
  split.active = false;

  // r_prev = Q^T V (top block of G).
  dense::copy(split.g.view().block(0, 0, nq, s), r_prev);

  // Pythagorean update: S = V^T V - r_prev^T r_prev, then Cholesky
  // (Fig. 4a line 2).
  dense::copy(split.g.view().block(nq, 0, s, s), r_diag);
  if (nq > 0) {
    if (ctx.timers) ctx.timers->start("ortho/chol");
    dense::gemm_tn(-1.0, r_prev, r_prev, 1.0, r_diag);
    if (ctx.timers) ctx.timers->stop("ortho/chol");
  }
  chol_factor(ctx, r_diag, "BCGS-PIP");

  // V := (V - Q r_prev) r_diag^{-1} (Fig. 4a lines 3-4).
  block_update(ctx, q, r_prev, v);
  block_scale(ctx, r_diag, v);
}

void bcgs_pip2(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
               MatrixView r_prev, MatrixView r_diag) {
  const int breakdowns_before = ctx.cholesky_breakdowns;
  // The second pass's scratch allocation overlaps the first pass's
  // fused-Gram reduce.
  dense::Matrix t_prev, t_diag;
  bcgs_pip(ctx, q, v, r_prev, r_diag, [&] {
    t_prev = dense::Matrix(q.cols, v.cols);
    t_diag = dense::Matrix(v.cols, v.cols);
  });
  // Re-orthogonalization of an O(1)-conditioned panel: plain double
  // suffices unless the first pass had to shift (see cholqr2).
  ScopedGramPrecision guard(ctx,
                            ctx.mixed_precision_gram &&
                                ctx.cholesky_breakdowns != breakdowns_before);
  bcgs_pip(ctx, q, v, t_prev.view(), t_diag.view());
  reortho_fixup(t_prev.view(), t_diag.view(), r_prev, r_diag);
}

}  // namespace tsbo::ortho
