#include "ortho/block_gs.hpp"

#include "dense/blas3.hpp"
#include "ortho/intra.hpp"

#include <cassert>

namespace tsbo::ortho {

namespace {

/// r_prev += t_prev * r_diag;  r_diag := t_diag * r_diag.
/// The exact re-orthogonalization coefficient update (the paper's
/// Fig. 4b lines 5-6; Fig. 2b's "T + R" is its first-order
/// approximation — we apply the exact form everywhere).
void reortho_fixup(ConstMatrixView t_prev, ConstMatrixView t_diag,
                   MatrixView r_prev, MatrixView r_diag) {
  if (r_prev.cols > 0 && r_prev.rows > 0) {
    dense::gemm_nn(1.0, t_prev, r_diag, 1.0, r_prev);
  }
  dense::Matrix tmp(r_diag.rows, r_diag.cols);
  dense::gemm_nn(1.0, t_diag, r_diag, 0.0, tmp.view());
  dense::copy(tmp.view(), r_diag);
}

}  // namespace

void bcgs_project(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
                  MatrixView r_prev) {
  assert(r_prev.rows == q.cols && r_prev.cols == v.cols);
  if (q.cols == 0) return;
  block_dot(ctx, q, v, r_prev);
  block_update(ctx, q, r_prev, v);
}

void bcgs2(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
           MatrixView r_prev, MatrixView r_diag, IntraKind intra) {
  assert(r_diag.rows == v.cols && r_diag.cols == v.cols);

  // First inter-block pass.
  bcgs_project(ctx, q, v, r_prev);

  // First intra-block factorization.
  switch (intra) {
    case IntraKind::kCholQR2:
      cholqr2(ctx, v, r_diag);
      break;
    case IntraKind::kHHQR:
      hhqr(ctx, v, r_diag);
      break;
    case IntraKind::kShiftedCholQR3:
      shifted_cholqr3(ctx, v, r_diag);
      break;
  }

  if (q.cols == 0) return;

  // Second inter-block pass + CholQR (paper Fig. 2b lines 10-15).
  dense::Matrix t_prev(q.cols, v.cols);
  dense::Matrix t_diag(v.cols, v.cols);
  bcgs_project(ctx, q, v, t_prev.view());
  cholqr(ctx, v, t_diag.view());
  reortho_fixup(t_prev.view(), t_diag.view(), r_prev, r_diag);
}

void bcgs_pip(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
              MatrixView r_prev, MatrixView r_diag) {
  assert(r_prev.rows == q.cols && r_prev.cols == v.cols);
  assert(r_diag.rows == v.cols && r_diag.cols == v.cols);
  const index_t nq = q.cols;
  const index_t s = v.cols;

  // Single fused reduce: G = [Q, V]^T V (paper Fig. 4a line 1).
  dense::Matrix g(nq + s, s);
  fused_gram(ctx, q, v, g.view());

  // r_prev = Q^T V (top block of G).
  dense::copy(g.view().block(0, 0, nq, s), r_prev);

  // Pythagorean update: S = V^T V - r_prev^T r_prev, then Cholesky
  // (Fig. 4a line 2).
  dense::copy(g.view().block(nq, 0, s, s), r_diag);
  if (nq > 0) {
    if (ctx.timers) ctx.timers->start("ortho/chol");
    dense::gemm_tn(-1.0, r_prev, r_prev, 1.0, r_diag);
    if (ctx.timers) ctx.timers->stop("ortho/chol");
  }
  chol_factor(ctx, r_diag, "BCGS-PIP");

  // V := (V - Q r_prev) r_diag^{-1} (Fig. 4a lines 3-4).
  block_update(ctx, q, r_prev, v);
  block_scale(ctx, r_diag, v);
}

void bcgs_pip2(OrthoContext& ctx, ConstMatrixView q, MatrixView v,
               MatrixView r_prev, MatrixView r_diag) {
  bcgs_pip(ctx, q, v, r_prev, r_diag);
  dense::Matrix t_prev(q.cols, v.cols);
  dense::Matrix t_diag(v.cols, v.cols);
  bcgs_pip(ctx, q, v, t_prev.view(), t_diag.view());
  reortho_fixup(t_prev.view(), t_diag.view(), r_prev, r_diag);
}

}  // namespace tsbo::ortho
