#pragma once
// Measurement helpers for the numerical studies (Figs. 6-9): gathering
// distributed panels and computing the paper's two metrics,
// orthogonality error ||I - Q^T Q||_2 and condition number kappa_2.

#include "dense/matrix.hpp"
#include "ortho/multivector.hpp"

namespace tsbo::ortho {

/// Gathers a distributed multivector (rank-local row blocks) to a full
/// matrix on rank `root`; other ranks receive an empty matrix.  With a
/// null communicator, returns a copy.  Diagnostic use only (not part of
/// the solver's communication accounting).
dense::Matrix gather_multivector(par::Communicator* comm,
                                 dense::ConstMatrixView local, int root = 0);

/// ||I - Q^T Q||_2 of a distributed Q: one reduce for the Gram matrix,
/// then a redundant small SVD on every rank.  Cheap enough to call
/// per panel.
double orthogonality_error(OrthoContext& ctx, dense::ConstMatrixView q_local);

/// kappa_2 of a distributed tall-skinny matrix: gathers to root,
/// computes the Jacobi-SVD condition number there, broadcasts the
/// result.  Expensive (O(n k^2)); the Fig. 8/9 harnesses call it at
/// panel granularity.
double condition_number(OrthoContext& ctx, dense::ConstMatrixView local);

}  // namespace tsbo::ortho
