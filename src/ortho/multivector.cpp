#include "ortho/multivector.hpp"

#include "dense/blas1.hpp"
#include "dense/blas3.hpp"
#include "dense/dd.hpp"
#include "util/aligned.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <exception>
#include <functional>
#include <limits>
#include <span>
#include <vector>

namespace tsbo::ortho {

namespace {

void time_start(OrthoContext& ctx, const char* phase) {
  if (ctx.timers) ctx.timers->start(phase);
}
void time_stop(OrthoContext& ctx, const char* phase) {
  if (ctx.timers) ctx.timers->stop(phase);
}

// `gram.stage1` fault seam: consulted once per fused stage-1 Gram,
// after the local gemm and before the reduce is published (a throw
// here leaves no pending collective of its own; siblings already in
// flight are completed by their PendingReduce dtors during unwind).  A
// corrupt flips the same bit of every rank's local partial at the same
// (row, col) — the reduced Gram is perturbed by a detectable 2^64-scale
// entry on all ranks identically.
void consult_gram_fault(OrthoContext& ctx, MatrixView g) {
  if (ctx.comm == nullptr) return;
  ctx.comm->consult_fault(par::FaultSite::kGramStage1, [g](long ordinal) {
    const long cells = static_cast<long>(g.rows) * static_cast<long>(g.cols);
    if (cells == 0) return;
    const long cell = ordinal % cells;
    par::FaultInjector::flip_bit(g.col(cell / g.rows)[cell % g.rows]);
  });
}

}  // namespace

PendingReduce ireduce_sum(OrthoContext& ctx, MatrixView c) {
  PendingReduce p;
  p.ctx_ = &ctx;
  p.hi_ = c;
  p.pending_ = true;
  if (ctx.comm) {
    time_start(ctx, "ortho/reduce");
    if (c.ld == c.rows) {
      p.req_ = ctx.comm->iallreduce_sum(std::span<double>(
          c.data,
          static_cast<std::size_t>(c.rows) * static_cast<std::size_t>(c.cols)));
    } else {
      // Strided view (a sub-block of the solver's global R matrix):
      // pack, reduce, unpack at wait().  Reducing the raw strided
      // memory would corrupt the surrounding coefficients.
      p.packed_hi_.resize(static_cast<std::size_t>(c.rows) *
                          static_cast<std::size_t>(c.cols));
      for (dense::index_t j = 0; j < c.cols; ++j) {
        std::copy_n(c.col(j), c.rows,
                    p.packed_hi_.data() + static_cast<std::size_t>(j) * c.rows);
      }
      p.req_ = ctx.comm->iallreduce_sum(p.packed_hi_);
    }
    time_stop(ctx, "ortho/reduce");
  }
  return p;
}

PendingReduce ireduce_sum_dd(OrthoContext& ctx, MatrixView hi, MatrixView lo) {
  PendingReduce p;
  p.ctx_ = &ctx;
  p.hi_ = hi;
  p.lo_ = lo;
  p.dd_ = true;
  p.pending_ = true;
  if (ctx.comm) {
    time_start(ctx, "ortho/reduce");
    const std::size_t total =
        static_cast<std::size_t>(hi.rows) * static_cast<std::size_t>(hi.cols);
    if (hi.ld == hi.rows && lo.ld == lo.rows) {
      p.req_ = ctx.comm->iallreduce_sum_dd(std::span<double>(hi.data, total),
                                           std::span<double>(lo.data, total));
    } else {
      p.packed_hi_.resize(total);
      p.packed_lo_.resize(total);
      for (dense::index_t j = 0; j < hi.cols; ++j) {
        std::copy_n(hi.col(j), hi.rows,
                    p.packed_hi_.data() + static_cast<std::size_t>(j) * hi.rows);
        std::copy_n(lo.col(j), lo.rows,
                    p.packed_lo_.data() + static_cast<std::size_t>(j) * lo.rows);
      }
      p.req_ = ctx.comm->iallreduce_sum_dd(p.packed_hi_, p.packed_lo_);
    }
    time_stop(ctx, "ortho/reduce");
  }
  return p;
}

void PendingReduce::wait() {
  if (!pending_) return;
  pending_ = false;
  if (ctx_ == nullptr || ctx_->comm == nullptr) return;
  // When an exception (e.g. an injected fault) unwinds through the
  // reduce window, the interrupted call site may have left
  // "ortho/reduce" running; completing the collective is what keeps
  // the ranks deadlock-free — drop the timing rather than trip the
  // phase-state check inside a destructor.
  const bool timed = ctx_->timers != nullptr && std::uncaught_exceptions() == 0;
  if (timed) ctx_->timers->start("ortho/reduce");
  req_.wait();
  if (!packed_hi_.empty()) {
    for (dense::index_t j = 0; j < hi_.cols; ++j) {
      std::copy_n(packed_hi_.data() + static_cast<std::size_t>(j) * hi_.rows,
                  hi_.rows, hi_.col(j));
    }
  }
  if (dd_ && !packed_lo_.empty()) {
    for (dense::index_t j = 0; j < lo_.cols; ++j) {
      std::copy_n(packed_lo_.data() + static_cast<std::size_t>(j) * lo_.rows,
                  lo_.rows, lo_.col(j));
    }
  }
  if (timed) ctx_->timers->stop("ortho/reduce");
}

void block_dot(OrthoContext& ctx, ConstMatrixView a, ConstMatrixView b,
               MatrixView c, const OverlapHook& overlap) {
  time_start(ctx, "ortho/dot");
  if (ctx.mixed_precision_gram) {
    dense::gemm_tn_dd(a, b, c);
  } else {
    dense::gemm_tn(1.0, a, b, 0.0, c);
  }
  time_stop(ctx, "ortho/dot");
  PendingReduce pending = ireduce_sum(ctx, c);
  if (overlap) {
    overlap();
  } else {
    pending.no_overlap_credit();  // empty window: nothing was hidden
  }
  pending.wait();
}

void block_dot_dd(OrthoContext& ctx, ConstMatrixView a, ConstMatrixView b,
                  MatrixView c_hi, MatrixView c_lo) {
  time_start(ctx, "ortho/dot");
  dense::gemm_tn_dd(a, b, c_hi, c_lo);
  time_stop(ctx, "ortho/dot");
  PendingReduce pending = ireduce_sum_dd(ctx, c_hi, c_lo);
  pending.no_overlap_credit();
  pending.wait();
}

PendingReduce fused_gram_ireduce(OrthoContext& ctx, ConstMatrixView q,
                                 ConstMatrixView v, MatrixView g) {
  assert(g.rows == q.cols + v.cols && g.cols == v.cols);
  time_start(ctx, "ortho/dot");
  MatrixView top = g.block(0, 0, q.cols, v.cols);
  MatrixView bottom = g.block(q.cols, 0, v.cols, v.cols);
  // Always working precision: the mixed-precision BCGS-PIP path goes
  // through fused_gram_dd, which keeps the pair form alive for the
  // Pythagorean update and Cholesky (rounding here would reintroduce
  // the eps^{-1/2} cliff this layer exists to remove).
  if (q.cols > 0) dense::gemm_tn(1.0, q, v, 0.0, top);
  dense::gemm_tn(1.0, v, v, 0.0, bottom);
  time_stop(ctx, "ortho/dot");
  consult_gram_fault(ctx, g);
  return ireduce_sum(ctx, g);
}

void fused_gram(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView v,
                MatrixView g) {
  PendingReduce pending = fused_gram_ireduce(ctx, q, v, g);
  pending.no_overlap_credit();
  pending.wait();
}

PendingReduce fused_gram_dd_ireduce(OrthoContext& ctx, ConstMatrixView q,
                                    ConstMatrixView v, MatrixView g_hi,
                                    MatrixView g_lo) {
  assert(g_hi.rows == q.cols + v.cols && g_hi.cols == v.cols);
  assert(g_lo.rows == g_hi.rows && g_lo.cols == g_hi.cols);
  time_start(ctx, "ortho/dot");
  if (q.cols > 0) {
    dense::gemm_tn_dd(q, v, g_hi.block(0, 0, q.cols, v.cols),
                      g_lo.block(0, 0, q.cols, v.cols));
  }
  dense::gemm_tn_dd(v, v, g_hi.block(q.cols, 0, v.cols, v.cols),
                    g_lo.block(q.cols, 0, v.cols, v.cols));
  time_stop(ctx, "ortho/dot");
  consult_gram_fault(ctx, g_hi);
  return ireduce_sum_dd(ctx, g_hi, g_lo);
}

void fused_gram_dd(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView v,
                   MatrixView g_hi, MatrixView g_lo) {
  PendingReduce pending = fused_gram_dd_ireduce(ctx, q, v, g_hi, g_lo);
  pending.no_overlap_credit();
  pending.wait();
}

void block_update(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView c,
                  MatrixView v) {
  if (q.cols == 0) return;
  time_start(ctx, "ortho/update");
  dense::gemm_nn(-1.0, q, c, 1.0, v);
  time_stop(ctx, "ortho/update");
}

void block_scale(OrthoContext& ctx, ConstMatrixView r, MatrixView v) {
  time_start(ctx, "ortho/trsm");
  dense::trsm_right_upper(r, v);
  time_stop(ctx, "ortho/trsm");
}

namespace {

/// Shared breakdown-recovery scaffolding for the plain and dd Cholesky
/// paths.  `factor` attempts the factorization in place;
/// `retry_shifted(shift)` must restore the matrix and re-factor with
/// the diagonal shift.  Shifts follow Fukaya et al.: base =
/// 11 (n+1) u ||G||_1 at the path's unit roundoff u, growing 100x per
/// attempt — termination is guaranteed since a shift exceeding
/// ||G||_1 >= |lambda_min(G)| makes G + shift*I positive definite.
void chol_with_policy(OrthoContext& ctx, const std::string& what,
                      const char* indefinite_detail,
                      const char* persist_detail, double gnorm,
                      double unit_roundoff, index_t n,
                      const std::function<bool()>& factor,
                      const std::function<bool(double)>& retry_shifted) {
  time_start(ctx, "ortho/chol");
  if (!factor()) {
    ctx.cholesky_breakdowns += 1;
    if (ctx.policy == BreakdownPolicy::kThrow) {
      time_stop(ctx, "ortho/chol");
      throw CholeskyBreakdown("Cholesky breakdown in " + what +
                              indefinite_detail);
    }
    // A non-finite Gram (overflowing basis) defeats the shift logic —
    // NaN shifts neither factor nor trip the growth bail-out — so fail
    // loudly instead of retrying forever.
    if (!std::isfinite(gnorm)) {
      time_stop(ctx, "ortho/chol");
      throw CholeskyBreakdown("Cholesky breakdown in " + what +
                              " (Gram matrix not finite)");
    }
    double shift = std::max(
        11.0 * (static_cast<double>(n) + 1.0) * unit_roundoff * gnorm,
        std::numeric_limits<double>::min());
    bool fixed = false;
    while (true) {
      ctx.shift_retries += 1;
      if (retry_shifted(shift)) {
        fixed = true;
        break;
      }
      if (shift > 2.0 * gnorm) break;  // mathematically impossible; bail
      shift *= 100.0;
    }
    if (!fixed) {
      time_stop(ctx, "ortho/chol");
      throw CholeskyBreakdown("Cholesky breakdown in " + what +
                              persist_detail);
    }
  }
  time_stop(ctx, "ortho/chol");
}

/// Records the diagonal-ratio conditioning estimate of a successful
/// Gram factorization: est = (max|r_ii| / min|r_ii|)^2 <= kappa_2(G).
/// `r` is the upper factor (the hi part suffices for the dd path — the
/// lo correction cannot move the ratio's order of magnitude).
void record_gram_kappa(OrthoContext& ctx, ConstMatrixView r) {
  if (r.rows == 0) return;
  double dmax = 0.0;
  double dmin = std::numeric_limits<double>::infinity();
  for (index_t i = 0; i < r.rows; ++i) {
    const double d = std::abs(r(i, i));
    dmax = std::max(dmax, d);
    dmin = std::min(dmin, d);
  }
  const double est = (dmin > 0.0 && dmax > 0.0)
                         ? (dmax / dmin) * (dmax / dmin)
                         : std::numeric_limits<double>::infinity();
  ctx.last_gram_kappa = est;
  ctx.gram_kappa_peak = std::max(ctx.gram_kappa_peak, est);
}

/// Consults the fault-injection seam.  Counts the attempt even with no
/// injector installed so the ordinal always means "global Gram Cholesky
/// index", independent of whether a test is listening.
bool consume_injected_breakdown(OrthoContext& ctx) {
  const long ordinal = ctx.chol_attempts++;
  return ctx.inject_breakdown && ctx.inject_breakdown(ordinal);
}

}  // namespace

void chol_factor(OrthoContext& ctx, MatrixView g, const std::string& what) {
  // Keep a pristine copy in case a shifted retry is needed.
  dense::Matrix saved = dense::copy_of(g);
  const bool forced = consume_injected_breakdown(ctx);
  chol_with_policy(
      ctx, what,
      " (Gram matrix numerically indefinite; condition (1)/(5)/(9) violated)",
      " persists after shifted retries", dense::one_norm(saved.view()),
      std::numeric_limits<double>::epsilon(), g.rows,
      [&] { return !forced && dense::potrf_upper(g).ok(); },
      [&](double shift) {
        dense::copy(saved.view(), g);
        return dense::potrf_upper_shifted(g, shift).ok();
      });
  record_gram_kappa(ctx, g);
}

void chol_factor_dd(OrthoContext& ctx, MatrixView g_hi, MatrixView g_lo,
                    const std::string& what) {
  dense::Matrix saved_hi = dense::copy_of(g_hi);
  dense::Matrix saved_lo = dense::copy_of(g_lo);
  const bool forced = consume_injected_breakdown(ctx);
  // Shifted retries start at u_dd * ||G||: the Gram entries are exact
  // to ~m * u_dd, so recovery perturbs ~1e16x less than the double
  // path's eps * ||G|| base.
  chol_with_policy(
      ctx, what,
      " (Gram matrix indefinite even at dd precision; kappa(V) beyond ~1e15)",
      " persists after shifted dd retries", dense::one_norm(saved_hi.view()),
      eft::kUnitRoundoff, g_hi.rows,
      [&] { return !forced && dense::potrf_upper_dd(g_hi, g_lo).ok(); },
      [&](double shift) {
        dense::copy(saved_hi.view(), g_hi);
        dense::copy(saved_lo.view(), g_lo);
        return dense::potrf_upper_dd_shifted(g_hi, g_lo, shift).ok();
      });
  record_gram_kappa(ctx, g_hi);
}

double global_norm(OrthoContext& ctx, std::span<const double> x) {
  // Deterministic threaded local sum; ranks then combine via the
  // (deterministic) all-reduce, keeping the factor replicated exactly.
  double s = dense::sumsq(x);
  if (ctx.comm) {
    time_start(ctx, "ortho/reduce");
    s = ctx.comm->allreduce_sum_scalar(s);
    time_stop(ctx, "ortho/reduce");
  }
  return std::sqrt(s);
}

}  // namespace tsbo::ortho
