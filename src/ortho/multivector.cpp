#include "ortho/multivector.hpp"

#include "dense/blas1.hpp"
#include "dense/blas3.hpp"
#include "dense/dd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace tsbo::ortho {

namespace {

void time_start(OrthoContext& ctx, const char* phase) {
  if (ctx.timers) ctx.timers->start(phase);
}
void time_stop(OrthoContext& ctx, const char* phase) {
  if (ctx.timers) ctx.timers->stop(phase);
}

void reduce_sum(OrthoContext& ctx, MatrixView c) {
  time_start(ctx, "ortho/reduce");
  if (ctx.comm) {
    if (c.ld == c.rows) {
      ctx.comm->allreduce_sum(std::span<double>(
          c.data,
          static_cast<std::size_t>(c.rows) * static_cast<std::size_t>(c.cols)));
    } else {
      // Strided view (a sub-block of the solver's global R matrix):
      // pack, reduce, unpack.  Reducing the raw strided memory would
      // corrupt the surrounding coefficients.
      std::vector<double> packed(static_cast<std::size_t>(c.rows) *
                                 static_cast<std::size_t>(c.cols));
      for (dense::index_t j = 0; j < c.cols; ++j) {
        std::copy_n(c.col(j), c.rows,
                    packed.data() + static_cast<std::size_t>(j) * c.rows);
      }
      ctx.comm->allreduce_sum(packed);
      for (dense::index_t j = 0; j < c.cols; ++j) {
        std::copy_n(packed.data() + static_cast<std::size_t>(j) * c.rows,
                    c.rows, c.col(j));
      }
    }
  }
  time_stop(ctx, "ortho/reduce");
}

}  // namespace

void block_dot(OrthoContext& ctx, ConstMatrixView a, ConstMatrixView b,
               MatrixView c) {
  time_start(ctx, "ortho/dot");
  if (ctx.mixed_precision_gram) {
    dense::gemm_tn_dd(a, b, c);
  } else {
    dense::gemm_tn(1.0, a, b, 0.0, c);
  }
  time_stop(ctx, "ortho/dot");
  reduce_sum(ctx, c);
}

void fused_gram(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView v,
                MatrixView g) {
  assert(g.rows == q.cols + v.cols && g.cols == v.cols);
  time_start(ctx, "ortho/dot");
  MatrixView top = g.block(0, 0, q.cols, v.cols);
  MatrixView bottom = g.block(q.cols, 0, v.cols, v.cols);
  if (ctx.mixed_precision_gram) {
    if (q.cols > 0) dense::gemm_tn_dd(q, v, top);
    dense::gemm_tn_dd(v, v, bottom);
  } else {
    if (q.cols > 0) dense::gemm_tn(1.0, q, v, 0.0, top);
    dense::gemm_tn(1.0, v, v, 0.0, bottom);
  }
  time_stop(ctx, "ortho/dot");
  reduce_sum(ctx, g);
}

void block_update(OrthoContext& ctx, ConstMatrixView q, ConstMatrixView c,
                  MatrixView v) {
  if (q.cols == 0) return;
  time_start(ctx, "ortho/update");
  dense::gemm_nn(-1.0, q, c, 1.0, v);
  time_stop(ctx, "ortho/update");
}

void block_scale(OrthoContext& ctx, ConstMatrixView r, MatrixView v) {
  time_start(ctx, "ortho/trsm");
  dense::trsm_right_upper(r, v);
  time_stop(ctx, "ortho/trsm");
}

void chol_factor(OrthoContext& ctx, MatrixView g, const std::string& what) {
  time_start(ctx, "ortho/chol");
  // Keep a pristine copy in case a shifted retry is needed.
  dense::Matrix saved = dense::copy_of(g);
  dense::CholResult res = dense::potrf_upper(g);
  if (!res.ok()) {
    ctx.cholesky_breakdowns += 1;
    if (ctx.policy == BreakdownPolicy::kThrow) {
      time_stop(ctx, "ortho/chol");
      throw CholeskyBreakdown("Cholesky breakdown in " + what +
                              " (Gram matrix numerically indefinite; "
                              "condition (1)/(5)/(9) violated)");
    }
    // Shifted retry (Fukaya et al.): shift = c * eps * ||G||_1, growing
    // by 100x per attempt.  Termination is guaranteed: once the shift
    // exceeds ||G||_1 >= |lambda_min(G)|, G + shift*I is positive
    // definite.
    const double gnorm = dense::one_norm(saved.view());
    const double base = std::max(
        11.0 * (static_cast<double>(g.rows) + 1.0) *
            std::numeric_limits<double>::epsilon() * gnorm,
        std::numeric_limits<double>::min());
    double shift = base;
    bool fixed = false;
    while (true) {
      dense::copy(saved.view(), g);
      ctx.shift_retries += 1;
      if (dense::potrf_upper_shifted(g, shift).ok()) {
        fixed = true;
        break;
      }
      if (shift > 2.0 * gnorm) break;  // mathematically impossible; bail
      shift *= 100.0;
    }
    if (!fixed) {
      time_stop(ctx, "ortho/chol");
      throw CholeskyBreakdown("Cholesky breakdown in " + what +
                              " persists after shifted retries");
    }
  }
  time_stop(ctx, "ortho/chol");
}

double global_norm(OrthoContext& ctx, std::span<const double> x) {
  // Deterministic threaded local sum; ranks then combine via the
  // (deterministic) all-reduce, keeping the factor replicated exactly.
  double s = dense::sumsq(x);
  if (ctx.comm) {
    time_start(ctx, "ortho/reduce");
    s = ctx.comm->allreduce_sum_scalar(s);
    time_stop(ctx, "ortho/reduce");
  }
  return std::sqrt(s);
}

}  // namespace tsbo::ortho
