#include "ortho/randomized.hpp"

#include "dense/blas3.hpp"
#include "dense/householder.hpp"
#include "ortho/intra.hpp"
#include "sparse/generators.hpp"  // hash01

#include <cassert>
#include <cmath>
#include <span>

namespace tsbo::ortho {

void apply_sketch(dense::ConstMatrixView v, index_t row_begin, index_t k,
                  const SketchConfig& cfg, dense::MatrixView s_out) {
  assert(s_out.rows == k && s_out.cols == v.cols);
  const double scale = 1.0 / std::sqrt(static_cast<double>(cfg.nnz_per_coord));
  for (index_t i = 0; i < v.rows; ++i) {
    const auto gid = static_cast<std::uint64_t>(row_begin + i);
    for (int t = 0; t < cfg.nnz_per_coord; ++t) {
      // Two independent hashes: target sketch row and sign.
      const double h1 =
          sparse::hash01(gid * 64 + static_cast<std::uint64_t>(t), cfg.seed);
      const double h2 = sparse::hash01(
          gid * 64 + static_cast<std::uint64_t>(t) + 32, cfg.seed ^ 0xabcdef);
      const auto row = static_cast<index_t>(h1 * k);
      const double sign = h2 < 0.5 ? -scale : scale;
      for (index_t j = 0; j < v.cols; ++j) {
        s_out(row, j) += sign * v(i, j);
      }
    }
  }
}

void randomized_cholqr(OrthoContext& ctx, dense::MatrixView v,
                       dense::MatrixView r, index_t row_begin,
                       const SketchConfig& cfg) {
  assert(r.rows == v.cols && r.cols == v.cols);
  const index_t s = v.cols;
  const index_t k = cfg.rows_per_col * s;

  // Sketch locally, reduce globally (one small all-reduce).
  dense::Matrix sketch(k, s);
  if (ctx.timers) ctx.timers->start("ortho/dot");
  apply_sketch(v, row_begin, k, cfg, sketch.view());
  if (ctx.timers) ctx.timers->stop("ortho/dot");
  if (ctx.comm) {
    if (ctx.timers) ctx.timers->start("ortho/reduce");
    ctx.comm->allreduce_sum(
        std::span<double>(sketch.data().data(), sketch.data().size()));
    if (ctx.timers) ctx.timers->stop("ortho/reduce");
  }

  // Tiny Householder QR of the sketch (redundant on every rank); the
  // resulting triangular factor preconditions V.
  if (ctx.timers) ctx.timers->start("ortho/chol");
  dense::HouseholderQR f = dense::geqrf(sketch.view());
  dense::Matrix r_s = dense::extract_r(f);
  // Guard against an (improbable) rank-deficient sketch.
  for (index_t j = 0; j < s; ++j) {
    if (r_s(j, j) == 0.0) r_s(j, j) = 1.0;
  }
  if (ctx.timers) ctx.timers->stop("ortho/chol");
  block_scale(ctx, r_s.view(), v);

  // One CholQR finishes the job: V R_s^{-1} is O(1)-conditioned.
  cholqr(ctx, v, r);

  // r := r * r_s (combined factor).
  if (ctx.timers) ctx.timers->start("ortho/chol");
  dense::Matrix combined(s, s);
  dense::gemm_nn(1.0, r, r_s.view(), 0.0, combined.view());
  dense::copy(combined.view(), r);
  if (ctx.timers) ctx.timers->stop("ortho/chol");
}

}  // namespace tsbo::ortho
