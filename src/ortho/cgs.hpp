#pragma once
// Column-wise Gram-Schmidt for standard GMRES (the paper's baseline
// "GMRES + CGS2", Table III).

#include "ortho/multivector.hpp"

#include <span>

namespace tsbo::ortho {

/// Classical Gram-Schmidt with re-orthogonalization: orthogonalizes v
/// against the q columns of Q and normalizes it.  Writes q + 1 values
/// into h (projection coefficients, then the norm).  3 global reduces
/// (2 projection passes + 1 norm) — BLAS-2, the standard-GMRES cost the
/// block algorithms beat.
void cgs2_step(OrthoContext& ctx, ConstMatrixView q, std::span<double> v,
               std::span<double> h);

/// Modified Gram-Schmidt variant (q + 1 reduces; reference).
void mgs_step(OrthoContext& ctx, ConstMatrixView q, std::span<double> v,
              std::span<double> h);

}  // namespace tsbo::ortho
