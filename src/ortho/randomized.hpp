#pragma once
// Randomized (sketched) Cholesky QR — the paper's named future-work
// direction (Section IX; Balabanov [3], arXiv:2210.09953).
//
// A sparse sign-embedding Theta (k x n, k = c*s rows, q nonzeros of
// +-1/sqrt(q) per input coordinate) sketches the panel: S = Theta V is
// k x s and, with high probability, kappa(S) ~ kappa(V) up to a (1 +
// eps) distortion.  QR of the tiny sketch yields R_s such that
// V R_s^{-1} is O(1)-conditioned regardless of kappa(V), so a single
// CholQR afterwards is stable for any numerically full-rank input —
// removing the kappa < eps^{-1/2} condition of CholQR2 at the cost of
// one extra (small) reduce.
//
// Distributed: each rank sketches its local rows (the embedding is
// hashed from global row ids, so it is partition-independent), the k x
// s sketch is summed with one all-reduce, and the k x k QR runs
// redundantly on every rank.  Two reduces per call in total.

#include "ortho/multivector.hpp"

namespace tsbo::ortho {

/// Sketch parameters.
struct SketchConfig {
  index_t rows_per_col = 4;  ///< k = rows_per_col * s sketch rows
  int nnz_per_coord = 8;     ///< q: +-1 entries per input coordinate
  std::uint64_t seed = 0x5eed;
};

/// Applies the sparse sign embedding to the rank-local rows of v
/// (global row ids begin at `row_begin`); accumulates into s_out
/// (k x s, caller-zeroed).  Deterministic in (seed, global row id).
void apply_sketch(dense::ConstMatrixView v, index_t row_begin, index_t k,
                  const SketchConfig& cfg, dense::MatrixView s_out);

/// Randomized CholQR: V is replaced by its orthonormal Q; r receives
/// the s x s factor with Q r == V.  `row_begin` is the global index of
/// the rank's first row (0 for single-rank use).  Two global reduces.
void randomized_cholqr(OrthoContext& ctx, dense::MatrixView v,
                       dense::MatrixView r, index_t row_begin,
                       const SketchConfig& cfg = {});

}  // namespace tsbo::ortho
