#include "ortho/intra.hpp"

#include "dense/blas1.hpp"
#include "dense/blas3.hpp"
#include "dense/dd.hpp"
#include "util/aligned.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace tsbo::ortho {

namespace {

/// r := t * r for small upper-triangular t, r (in place on r).
void triangular_accumulate(ConstMatrixView t, MatrixView r) {
  assert(t.rows == r.rows && t.cols == r.rows && r.rows == r.cols);
  dense::Matrix tmp(r.rows, r.cols);
  dense::gemm_nn(1.0, t, r, 0.0, tmp.view());
  dense::copy(tmp.view(), r);
}

}  // namespace

void cholqr(OrthoContext& ctx, MatrixView v, MatrixView r) {
  assert(r.rows == v.cols && r.cols == v.cols);
  if (ctx.mixed_precision_gram) {
    // Mixed-precision variant: the Gram matrix stays in double-double
    // from accumulation through the Cholesky factorization (kappa(G) =
    // kappa(V)^2 can exceed 1/eps long before V is numerically rank
    // deficient — rounding G to double first would make the
    // factorization break down regardless of how accurately G was
    // computed).  Only the factor R is rounded back for the TRSM.
    dense::Matrix g_lo(v.cols, v.cols);
    dense::Matrix g_hi(v.cols, v.cols);
    block_dot_dd(ctx, v, v, g_hi.view(), g_lo.view());
    chol_factor_dd(ctx, g_hi.view(), g_lo.view(), "CholQR");
    dense::dd_round(g_hi.view(), g_lo.view(), r);
    block_scale(ctx, r, v);
    return;
  }
  // Gram matrix with one reduce, redundant Cholesky on every rank
  // (deterministic reduction => identical factors), local TRSM.
  block_dot(ctx, v, v, r);
  chol_factor(ctx, r, "CholQR");
  block_scale(ctx, r, v);
}

void cholqr2(OrthoContext& ctx, MatrixView v, MatrixView r) {
  const int breakdowns_before = ctx.cholesky_breakdowns;
  cholqr(ctx, v, r);
  dense::Matrix t(v.cols, v.cols);
  {
    // A clean first pass leaves kappa(Q1) ~ 1 + eps * kappa(V) = O(1),
    // far below the double cliff, so the re-orthogonalization pass
    // gains no stability from the 5-10x-cost dd Gram — drop to the
    // plain path.  A first pass that needed shifted retries leaves
    // kappa(Q1) unbounded; keep dd for it.
    ScopedGramPrecision guard(
        ctx, ctx.mixed_precision_gram &&
                 ctx.cholesky_breakdowns != breakdowns_before);
    cholqr(ctx, v, t.view());
  }
  triangular_accumulate(t.view(), r);
}

void shifted_cholqr3(OrthoContext& ctx, MatrixView v, MatrixView r) {
  assert(r.rows == v.cols && r.cols == v.cols);
  // First pass: always-shifted Cholesky; the shift of [11] guarantees
  // success for any numerically full-rank input.  The shift magnitude
  // is tied to the *working* precision of V (eps, not u_dd) even on
  // the mixed-precision path — it guards against rank deficiency of
  // the double-stored input, which dd accumulation cannot repair.
  const bool dd = ctx.mixed_precision_gram;
  const index_t sd = dd ? v.cols : 0;  // pair matrices only on the dd path
  dense::Matrix g_lo(sd, sd);
  dense::Matrix g_hi(sd, sd);
  if (dd) {
    block_dot_dd(ctx, v, v, g_hi.view(), g_lo.view());
  } else {
    block_dot(ctx, v, v, r);
  }
  if (ctx.timers) ctx.timers->start("ortho/chol");
  const double shift =
      11.0 * (static_cast<double>(v.cols) + 1.0) *
      std::numeric_limits<double>::epsilon() *
      dense::one_norm(dd ? ConstMatrixView(g_hi.view()) : ConstMatrixView(r));
  const bool ok =
      dd ? dense::potrf_upper_dd_shifted(g_hi.view(), g_lo.view(), shift).ok()
         : dense::potrf_upper_shifted(r, shift).ok();
  if (ctx.timers) ctx.timers->stop("ortho/chol");
  if (!ok) {
    throw CholeskyBreakdown("shifted CholQR: input numerically rank-deficient");
  }
  if (dd) dense::dd_round(g_hi.view(), g_lo.view(), r);
  block_scale(ctx, r, v);
  dense::Matrix t(v.cols, v.cols);
  cholqr2(ctx, v, t.view());
  triangular_accumulate(t.view(), r);
}

void hhqr(OrthoContext& ctx, MatrixView v, MatrixView r) {
  assert(r.rows == v.cols && r.cols == v.cols);
  const index_t nloc = v.rows;
  const index_t s = v.cols;
  const int rank = ctx.comm ? ctx.comm->rank() : 0;
  const bool owns_pivots = rank == 0;
  // Collective validation: all ranks must agree to throw, otherwise the
  // non-throwing ranks would deadlock in the first reduction (the same
  // reason MPI codes validate before communicating).
  {
    double bad = (owns_pivots && nloc < s) ? 1.0 : 0.0;
    if (ctx.comm) bad = ctx.comm->allreduce_max_scalar(bad);
    if (bad != 0.0) {
      throw std::invalid_argument("hhqr: rank 0 must own at least s rows");
    }
  }

  // Reflector scales; reflector vectors overwrite v below the pivot row.
  util::aligned_vector<double> tau(static_cast<std::size_t>(s), 0.0);

  auto timed_reduce = [&](std::span<double> buf) {
    if (!ctx.comm) return;
    if (ctx.timers) ctx.timers->start("ortho/reduce");
    ctx.comm->allreduce_sum(buf);
    if (ctx.timers) ctx.timers->stop("ortho/reduce");
  };

  // The panel sweeps below run on the threaded BLAS-1 kernels; their
  // chunked reductions are deterministic, so every rank's local partial
  // is reproducible at any thread count.
  auto tail = [nloc](const double* col, index_t lo) {
    return std::span<const double>(col + lo, static_cast<std::size_t>(nloc - lo));
  };
  auto tail_mut = [nloc](double* col, index_t lo) {
    return std::span<double>(col + lo, static_cast<std::size_t>(nloc - lo));
  };

  if (ctx.timers) ctx.timers->start("ortho/hhqr");
  for (index_t j = 0; j < s; ++j) {
    double* colj = v.col(j);
    // Fused reduce: [ sum of squares below and incl. pivot, pivot value ].
    // Pivot row j lives on rank 0 (block layout, row j global == local).
    const index_t lo = owns_pivots ? j : 0;
    const double nrm2_local = dense::sumsq(tail(colj, lo));
    double msg[2] = {nrm2_local, owns_pivots ? colj[j] : 0.0};
    timed_reduce(std::span<double>(msg, 2));
    const double normx = std::sqrt(msg[0]);
    const double alpha = msg[1];

    if (normx == 0.0) {
      tau[static_cast<std::size_t>(j)] = 0.0;
      r(j, j) = 0.0;
      continue;
    }
    const double beta = alpha >= 0.0 ? -normx : normx;
    const double v0 = alpha - beta;
    tau[static_cast<std::size_t>(j)] = -v0 / beta;
    const double inv_v0 = 1.0 / v0;
    // Scale my part of the reflector; pivot entry becomes implicit 1.
    dense::scal(inv_v0, tail_mut(colj, lo));
    if (owns_pivots) colj[j] = 1.0;

    // w = v^T V(:, j+1:s) as one fused GEMM (single reduce, single
    // stream of the reflector) followed by the rank-1 trailing update.
    const index_t rest = s - j - 1;
    if (rest > 0) {
      const ConstMatrixView vj{colj + lo, nloc - lo, 1, v.ld};
      MatrixView trailing = v.block(lo, j + 1, nloc - lo, rest);
      dense::Matrix w(1, rest);
      dense::gemm_tn(1.0, vj, trailing, 0.0, w.view());
      timed_reduce(w.data());
      dense::gemm_nn(-tau[static_cast<std::size_t>(j)], vj, w.view(), 1.0,
                     trailing);
    }
    // R(j, j) = beta; R(j, c) for c > j now sits in row j on rank 0 but
    // will be collected after the loop (rows 0..s-1 of v on rank 0).
    r(j, j) = beta;
  }

  // Collect R: rows 0..s-1 of the reduced v live on rank 0; broadcast so
  // every rank holds the replicated factor (one more synchronization).
  {
    util::aligned_vector<double> rbuf(static_cast<std::size_t>(s) * s, 0.0);
    if (owns_pivots) {
      for (index_t jj = 0; jj < s; ++jj) {
        for (index_t ii = 0; ii < jj; ++ii) {
          rbuf[static_cast<std::size_t>(jj) * s + ii] = v(ii, jj);
        }
        rbuf[static_cast<std::size_t>(jj) * s + jj] = r(jj, jj);
      }
    }
    if (ctx.comm) {
      if (ctx.timers) ctx.timers->start("ortho/reduce");
      ctx.comm->broadcast(rbuf, 0);
      if (ctx.timers) ctx.timers->stop("ortho/reduce");
    }
    for (index_t jj = 0; jj < s; ++jj) {
      for (index_t ii = 0; ii <= jj; ++ii) {
        r(ii, jj) = rbuf[static_cast<std::size_t>(jj) * s + ii];
      }
      for (index_t ii = jj + 1; ii < s; ++ii) r(ii, jj) = 0.0;
    }
  }

  // Form the explicit Q in place: apply reflectors in reverse order to
  // the identity columns.  Each application costs one reduce.
  dense::Matrix q(nloc, s);
  if (owns_pivots) {
    for (index_t j = 0; j < s; ++j) q(j, j) = 1.0;
  }
  for (index_t j = s - 1; j >= 0; --j) {
    const double tj = tau[static_cast<std::size_t>(j)];
    if (tj == 0.0) continue;
    const double* colj = v.col(j);
    const index_t lo = owns_pivots ? j : 0;
    const ConstMatrixView vj{colj + lo, nloc - lo, 1, v.ld};
    MatrixView qtail = q.view().block(lo, 0, nloc - lo, s);
    dense::Matrix w(1, s);
    dense::gemm_tn(1.0, vj, qtail, 0.0, w.view());
    timed_reduce(w.data());
    dense::gemm_nn(-tj, vj, w.view(), 1.0, qtail);
  }
  dense::copy(q.view(), v);
  if (ctx.timers) ctx.timers->stop("ortho/hhqr");

  // Sign-normalize: diag(R) >= 0 (BlkOrth convention of Fig. 1).
  for (index_t j = 0; j < s; ++j) {
    if (r(j, j) < 0.0) {
      for (index_t c = j; c < s; ++c) r(j, c) = -r(j, c);
      double* colj = v.col(j);
      for (index_t i = 0; i < nloc; ++i) colj[i] = -colj[i];
    }
  }
}

void mgs(OrthoContext& ctx, MatrixView v, MatrixView r) {
  assert(r.rows == v.cols && r.cols == v.cols);
  dense::fill(r, 0.0);
  const index_t s = v.cols;
  for (index_t j = 0; j < s; ++j) {
    double* colj = v.col(j);
    std::span<double> cj(colj, static_cast<std::size_t>(v.rows));
    for (index_t k = 0; k < j; ++k) {
      const double* colk = v.col(k);
      std::span<const double> ck(colk, static_cast<std::size_t>(v.rows));
      double h = dense::dot(ck, cj);
      if (ctx.comm) {
        if (ctx.timers) ctx.timers->start("ortho/reduce");
        h = ctx.comm->allreduce_sum_scalar(h);
        if (ctx.timers) ctx.timers->stop("ortho/reduce");
      }
      r(k, j) = h;
      dense::axpy(-h, ck, cj);
    }
    const double nrm = global_norm(ctx, cj);
    r(j, j) = nrm;
    if (nrm > 0.0) dense::scal(1.0 / nrm, cj);
  }
}

}  // namespace tsbo::ortho
