#pragma once
// Block-orthogonalization managers: the pluggable strategy the s-step
// GMRES solver calls once per panel (paper Fig. 1 line 11 "BlkOrth").
//
// A manager owns the policy of *when* columns become final:
//   * one-stage managers (BCGS2, BCGS-PIP2) finalize every panel
//     immediately — the solver can extend the Hessenberg matrix and
//     check convergence every s steps;
//   * the two-stage manager (paper Fig. 5) only pre-processes panels
//     (stage 1, one reduce each) and finalizes a whole big panel of bs
//     columns at once (stage 2), so the Hessenberg/convergence
//     granularity is bs steps — reproducing the paper's iteration
//     counts (e.g. 60255 vs 60300 in Table III).
//
// Bookkeeping contract: the solver maintains, alongside the basis, the
// (m+1)x(m+1) matrices R (coefficients of the raw Krylov columns in the
// final basis) and L (coefficients of each MPK *input* column in the
// final basis).  H is then assembled from H L = R-shifted (see
// krylov/hessenberg.hpp).  Managers fill both for the columns they
// finalize; note_mpk_start() lets them record what the MPK input
// actually was (final column -> unit vector; pre-processed column ->
// its stage-2 transform column).
//
// Precision: every manager inherits the conditioning contracts of its
// building blocks (block_gs.hpp / intra.hpp) — O(eps) final
// orthogonality while the per-panel condition numbers respect paper
// conditions (1)/(5)/(9), i.e. kappa < eps^{-1/2} ~ 6.7e7 in plain
// double, extended to ~1e15 when OrthoContext::mixed_precision_gram
// keeps the Gram matrices in double-double through their Cholesky
// factorizations.

#include "ortho/block_gs.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsbo::ortho {

/// Deferred-normalization scale for the pipelined lookahead hand-off:
/// the power of two nearest 1/r_cc (so r_cc * scale lands in [0.5, 1)),
/// clamped to [2^-20, 2^20].  A power of two makes the rescale of the
/// speculatively generated panel bitwise-exact — it commutes with the
/// matrix-powers recurrence — while keeping the raw-column chain's
/// magnitudes O(1) across panels.  Non-finite or non-positive r_cc
/// (breakdown panels) hands off unscaled (returns 1).
[[nodiscard]] inline double pow2_recip_scale(double r_cc) {
  if (!std::isfinite(r_cc) || !(r_cc > 0.0)) return 1.0;
  int e = 0;
  std::frexp(r_cc, &e);  // r_cc = f * 2^e with f in [0.5, 1)
  if (e > 20) e = 20;
  if (e < -20) e = -20;
  return std::ldexp(1.0, -e);
}

class BlockOrthoManager {
 public:
  virtual ~BlockOrthoManager() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// The solver is about to run MPK with basis column `start` as input.
  virtual void note_mpk_start(OrthoContext& ctx, MatrixView l,
                              index_t start) = 0;

  /// The solver is about to run MPK from the RAW basis column `start`
  /// — the column as generated, BEFORE the stage-1 epilogue transforms
  /// it (the pipelined lookahead hand-off).  The effective MPK input is
  /// alpha times the raw column, where alpha = lookahead_scale(start)
  /// is the deferred normalization computed when the owning panel's
  /// Gram factor arrives; the manager records
  /// L(:, start) = alpha * R(:, start) at the flush that finalizes the
  /// column (R is exactly the raw column's representation in the final
  /// basis).  Only managers that support split add_panel implement it.
  virtual void note_mpk_start_raw(OrthoContext& /*ctx*/, index_t /*start*/) {
    throw std::logic_error("note_mpk_start_raw: unsupported by this manager");
  }

  /// Deferred-normalization scale recorded for raw start `start`
  /// (pow2_recip_scale of the stage-1 diagonal); 1 until the owning
  /// panel's add_panel_finish ran.  0 means the manager's quality
  /// guard REJECTED the speculation (the raw column's new-direction
  /// content was too small a fraction of its norm): the solver must
  /// discard the speculative panel and regenerate from the processed
  /// column via note_mpk_start.
  [[nodiscard]] virtual double lookahead_scale(index_t /*start*/) const {
    return 1.0;
  }

  /// Orthogonalizes (or pre-processes) the `s` new columns
  /// [q0, q0 + s) of `basis` against columns [0, q0).  Returns the
  /// total number of FINAL columns (Hessenberg may be assembled up to
  /// that column count).
  virtual index_t add_panel(OrthoContext& ctx, MatrixView basis, index_t q0,
                            index_t s, MatrixView r, MatrixView l) = 0;

  /// Split-phase add_panel for the pipelined s-step runtime: begin
  /// issues the panel's stage-1 fused Gram reduce and returns true
  /// with the reduce in flight — the solver then generates the NEXT
  /// panel's matrix-powers columns before calling add_panel_finish
  /// (wait + panel completion; returns the final-column count exactly
  /// like add_panel).  `overlap_credit` false opts the window out of
  /// overlap accounting (pipeline_depth = 0: same arithmetic, latency
  /// fully exposed).  A false return means this panel cannot be split
  /// (scheme without a split path, or a double-double Gram) and the
  /// caller must fall back to add_panel.  Default: unsupported.
  virtual bool add_panel_begin(OrthoContext& /*ctx*/, MatrixView /*basis*/,
                               index_t /*q0*/, index_t /*s*/,
                               bool /*overlap_credit*/) {
    return false;
  }
  virtual index_t add_panel_finish(OrthoContext& /*ctx*/, MatrixView /*basis*/,
                                   index_t /*q0*/, index_t /*s*/,
                                   MatrixView /*r*/, MatrixView /*l*/) {
    throw std::logic_error("add_panel_finish without add_panel_begin");
  }

  /// Flushes pending pre-processed panels (restart boundary).  Returns
  /// the total number of final columns (== q_total afterwards).
  virtual index_t finalize(OrthoContext& ctx, MatrixView basis,
                           index_t q_total, MatrixView r, MatrixView l) = 0;

  /// Breakdown recovery (stability autopilot): a CholeskyBreakdown
  /// escaped add_panel / add_panel_finish / finalize, so every basis
  /// column at or beyond `q_generated` (the count the solver accepted
  /// before the throw) is unusable.  Discards broken internal state,
  /// finalizes whatever prefix is still trustworthy, and returns that
  /// final-column count — the solver re-bases the restart cycle from
  /// the last of those columns instead of aborting.  Deterministic:
  /// breakdowns fire identically on every rank (replicated post-reduce
  /// Grams), so all ranks take the same recovery path.  Default
  /// (one-stage managers): every accepted panel was finalized on
  /// arrival, so all `q_generated` columns stand.
  virtual index_t rebase_after_breakdown(OrthoContext& /*ctx*/,
                                         MatrixView /*basis*/,
                                         index_t q_generated, MatrixView /*r*/,
                                         MatrixView /*l*/) {
    return q_generated;
  }

  /// Starts a new restart cycle.
  virtual void reset() = 0;

  /// Starts a new restart cycle whose basis is seeded with `n_seed`
  /// already-final columns (block GMRES seeds a b-wide CholQR'd
  /// residual block instead of the single normalized residual).
  /// Managers with internal final-column watermarks override this;
  /// the default — and the single-RHS n_seed == 1 case for every
  /// manager — is plain reset().
  virtual void reset_cycle(index_t /*n_seed*/) { reset(); }

  /// Global synchronizations per s steps (the paper's accounting:
  /// BCGS2+CholQR2 = 5, BCGS-PIP2 = 2, two-stage = 1 + s/bs).
  [[nodiscard]] virtual double syncs_per_s_steps(index_t s,
                                                 index_t bs) const = 0;
};

/// One-stage manager around BCGS2 (paper Fig. 2b) with the chosen
/// intra-block factorization.
std::unique_ptr<BlockOrthoManager> make_bcgs2_manager(
    IntraKind intra = IntraKind::kCholQR2);

/// One-stage manager around single-pass BCGS-PIP (one reduce per panel,
/// *no* re-orthogonalization — ablation/diagnostic use).
std::unique_ptr<BlockOrthoManager> make_bcgs_pip_manager();

/// One-stage manager around BCGS-PIP2 (paper Fig. 4b).
std::unique_ptr<BlockOrthoManager> make_bcgs_pip2_manager();

/// Two-stage manager (paper Fig. 5): BCGS-PIP pre-processing per panel
/// plus one big-panel BCGS-PIP every `bs` columns.  `bs` must be a
/// multiple of the solver's step size s.
std::unique_ptr<BlockOrthoManager> make_two_stage_manager(index_t bs);

}  // namespace tsbo::ortho
