#pragma once
// Block-orthogonalization managers: the pluggable strategy the s-step
// GMRES solver calls once per panel (paper Fig. 1 line 11 "BlkOrth").
//
// A manager owns the policy of *when* columns become final:
//   * one-stage managers (BCGS2, BCGS-PIP2) finalize every panel
//     immediately — the solver can extend the Hessenberg matrix and
//     check convergence every s steps;
//   * the two-stage manager (paper Fig. 5) only pre-processes panels
//     (stage 1, one reduce each) and finalizes a whole big panel of bs
//     columns at once (stage 2), so the Hessenberg/convergence
//     granularity is bs steps — reproducing the paper's iteration
//     counts (e.g. 60255 vs 60300 in Table III).
//
// Bookkeeping contract: the solver maintains, alongside the basis, the
// (m+1)x(m+1) matrices R (coefficients of the raw Krylov columns in the
// final basis) and L (coefficients of each MPK *input* column in the
// final basis).  H is then assembled from H L = R-shifted (see
// krylov/hessenberg.hpp).  Managers fill both for the columns they
// finalize; note_mpk_start() lets them record what the MPK input
// actually was (final column -> unit vector; pre-processed column ->
// its stage-2 transform column).
//
// Precision: every manager inherits the conditioning contracts of its
// building blocks (block_gs.hpp / intra.hpp) — O(eps) final
// orthogonality while the per-panel condition numbers respect paper
// conditions (1)/(5)/(9), i.e. kappa < eps^{-1/2} ~ 6.7e7 in plain
// double, extended to ~1e15 when OrthoContext::mixed_precision_gram
// keeps the Gram matrices in double-double through their Cholesky
// factorizations.

#include "ortho/block_gs.hpp"

#include <memory>
#include <string>
#include <vector>

namespace tsbo::ortho {

class BlockOrthoManager {
 public:
  virtual ~BlockOrthoManager() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// The solver is about to run MPK with basis column `start` as input.
  virtual void note_mpk_start(OrthoContext& ctx, MatrixView l,
                              index_t start) = 0;

  /// Orthogonalizes (or pre-processes) the `s` new columns
  /// [q0, q0 + s) of `basis` against columns [0, q0).  Returns the
  /// total number of FINAL columns (Hessenberg may be assembled up to
  /// that column count).
  virtual index_t add_panel(OrthoContext& ctx, MatrixView basis, index_t q0,
                            index_t s, MatrixView r, MatrixView l) = 0;

  /// Flushes pending pre-processed panels (restart boundary).  Returns
  /// the total number of final columns (== q_total afterwards).
  virtual index_t finalize(OrthoContext& ctx, MatrixView basis,
                           index_t q_total, MatrixView r, MatrixView l) = 0;

  /// Starts a new restart cycle.
  virtual void reset() = 0;

  /// Global synchronizations per s steps (the paper's accounting:
  /// BCGS2+CholQR2 = 5, BCGS-PIP2 = 2, two-stage = 1 + s/bs).
  [[nodiscard]] virtual double syncs_per_s_steps(index_t s,
                                                 index_t bs) const = 0;
};

/// One-stage manager around BCGS2 (paper Fig. 2b) with the chosen
/// intra-block factorization.
std::unique_ptr<BlockOrthoManager> make_bcgs2_manager(
    IntraKind intra = IntraKind::kCholQR2);

/// One-stage manager around single-pass BCGS-PIP (one reduce per panel,
/// *no* re-orthogonalization — ablation/diagnostic use).
std::unique_ptr<BlockOrthoManager> make_bcgs_pip_manager();

/// One-stage manager around BCGS-PIP2 (paper Fig. 4b).
std::unique_ptr<BlockOrthoManager> make_bcgs_pip2_manager();

/// Two-stage manager (paper Fig. 5): BCGS-PIP pre-processing per panel
/// plus one big-panel BCGS-PIP every `bs` columns.  `bs` must be a
/// multiple of the solver's step size s.
std::unique_ptr<BlockOrthoManager> make_two_stage_manager(index_t bs);

}  // namespace tsbo::ortho
