// Reproduces paper Fig. 12: orthogonalization time breakdown of the
// two-stage approach with bs = m (see bench_fig10.cpp for the shared
// driver).  Expected: the smallest reduce share of the three
// breakdown figures — one reduce per panel plus one per big panel.

#define TSBO_BREAKDOWN_NO_MAIN
#include "bench_fig10.cpp"
#undef TSBO_BREAKDOWN_NO_MAIN

int main(int argc, char** argv) {
  using namespace tsbo;
  return bench::run_breakdown_figure(argc, argv, "Fig. 12",
                                     "solver=sstep ortho=two_stage",
                                     "two-stage (bs=m)");
}
