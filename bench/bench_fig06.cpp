// Reproduces paper Fig. 6: orthogonality error and condition number of
// CholQR / CholQR2 on logscaled matrices of varying condition number.
//
// Paper setup: 1e5 x 5 matrices V = X Sigma Y^T with log-spaced
// singular values, kappa(V) swept over decades, 10 random seeds
// (min/avg/max reported).  Expected shape: after the FIRST CholQR the
// orthogonality error grows as kappa(V)^2 * eps; once kappa(V) exceeds
// ~eps^{-1/2} ~ 6.7e7 the Cholesky factorization breaks down.  Below
// that threshold kappa(Q-hat) stays O(1) and CholQR2 delivers O(eps).
//
//   bench_fig06 [--n=100000] [--s=5] [--seeds=10]

#include "bench_common.hpp"

#include "par/config.hpp"
#include "dense/svd.hpp"
#include "ortho/intra.hpp"
#include "synth/synthetic.hpp"
#include "util/stats.hpp"

#include <cmath>
#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const auto n = static_cast<dense::index_t>(cli.get_int("n", 100000));
  const auto s = static_cast<dense::index_t>(cli.get_int("s", 5));
  const int seeds = cli.get_int("seeds", 10);
  cli.reject_unknown();

  std::printf(
      "# Fig. 6 reproduction: CholQR / CholQR2 on %d x %d logscaled "
      "matrices, %d seeds\n"
      "# expected: err1 ~ kappa^2*eps; breakdown past kappa ~ 6.7e7;\n"
      "#           kappa(Qhat) = O(1) and err2 = O(eps) below threshold\n\n",
      n, s, seeds);

  util::Table table({"kappa(V)", "monitor est", "err1 min", "err1 avg",
                     "err1 max", "kappa(Qhat)", "err2 (CholQR2)",
                     "breakdowns"});

  for (int dec = 1; dec <= 15; ++dec) {
    const double kappa = std::pow(10.0, dec);
    util::MinMeanMax err1, err2, condq, monitor;
    int breakdowns = 0;

    for (int seed = 0; seed < seeds; ++seed) {
      dense::Matrix v = synth::logscaled(n, s, kappa, static_cast<std::uint64_t>(seed));
      dense::Matrix r(s, s);
      ortho::OrthoContext ctx;
      ctx.policy = ortho::BreakdownPolicy::kThrow;
      try {
        ortho::cholqr(ctx, v.view(), r.view());
      } catch (const ortho::CholeskyBreakdown&) {
        ++breakdowns;
        continue;
      }
      // The autopilot's free estimate of kappa(V) from the Cholesky
      // factor's diagonal — should track the swept kappa column.
      monitor.add(std::sqrt(ctx.last_gram_kappa));
      err1.add(dense::orthogonality_error(v.view()));
      condq.add(dense::cond_2(v.view()));

      // Second pass completes CholQR2.
      dense::Matrix r2(s, s);
      try {
        ortho::cholqr(ctx, v.view(), r2.view());
        err2.add(dense::orthogonality_error(v.view()));
      } catch (const ortho::CholeskyBreakdown&) {
        ++breakdowns;
      }
    }

    table.row().add(util::sci(kappa, 0));
    table.add(monitor.count() ? util::sci(monitor.mean()) : "-");
    if (err1.count() > 0) {
      table.add(util::sci(err1.min()))
          .add(util::sci(err1.mean()))
          .add(util::sci(err1.max()))
          .add(util::sci(condq.mean()))
          .add(err2.count() ? util::sci(err2.mean()) : "-")
          .add(breakdowns);
    } else {
      table.add("-").add("-").add("-").add("-").add("-").add(breakdowns);
    }
  }
  table.print();
  return 0;
}
