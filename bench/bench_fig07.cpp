// Reproduces paper Fig. 7: condition number and orthogonality error of
// one-stage BCGS-PIP2 on glued matrices.
//
// Paper setup: glued matrix whose panels AND overall matrix share a
// prescribed condition number; BCGS-PIP2 orthogonalizes panel by panel.
// Expected shape: after the first BCGS-PIP sweep the orthogonality
// error is kappa(V)^2 * eps and kappa(Qhat) stays O(1) while
// kappa(V) < eps^{-1/2}; the second sweep gives O(eps) — identical to
// BCGS2-with-CholQR2's result (also printed as reference).
//
//   bench_fig07 [--n=50000] [--panels=6] [--s=5] [--seeds=5]

#include "bench_common.hpp"

#include "par/config.hpp"
#include "dense/svd.hpp"
#include "ortho/block_gs.hpp"
#include "synth/synthetic.hpp"
#include "util/stats.hpp"

#include <cmath>
#include <cstdio>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

/// Sweeps panels with the given one-stage algorithm; returns the final
/// basis (panels orthogonalized in place).  `monitor` (optional)
/// receives the peak per-panel conditioning estimate the Gram Cholesky
/// produced along the way — the quantity the stability autopilot polls.
template <typename Algo>
Matrix sweep(const Matrix& v0, index_t s, Algo&& algo, bool* ok,
             double* monitor = nullptr) {
  Matrix q = dense::copy_of(v0.view());
  Matrix r(v0.cols(), v0.cols());
  ortho::OrthoContext ctx;
  ctx.policy = ortho::BreakdownPolicy::kThrow;
  *ok = true;
  try {
    for (index_t c0 = 0; c0 < v0.cols(); c0 += s) {
      algo(ctx, q.view().columns(0, c0), q.view().columns(c0, s),
           r.view().block(0, c0, c0, s), r.view().block(c0, c0, s, s));
    }
  } catch (const ortho::CholeskyBreakdown&) {
    *ok = false;
  }
  if (monitor != nullptr) *monitor = std::sqrt(ctx.take_gram_kappa_peak());
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const auto n = static_cast<index_t>(cli.get_int("n", 50000));
  const int panels = cli.get_int("panels", 6);
  const auto s = static_cast<index_t>(cli.get_int("s", 5));
  const int seeds = cli.get_int("seeds", 5);
  cli.reject_unknown();

  std::printf(
      "# Fig. 7 reproduction: one-stage BCGS-PIP / BCGS-PIP2 on glued "
      "matrices (%d x %dx%d, %d seeds)\n"
      "# expected: after 1st PIP sweep err ~ kappa^2*eps, kappa(Qhat) = "
      "O(1); after 2nd sweep err = O(eps)\n\n",
      n, panels, s, seeds);

  util::Table table({"kappa", "monitor est", "PIP err1 avg",
                     "kappa(Qhat) avg", "PIP2 err avg", "BCGS2 err avg",
                     "breakdowns"});

  for (int dec = 1; dec <= 15; dec += 2) {
    const double kappa = std::pow(10.0, dec);
    util::MinMeanMax e1, cq, e2, eb, monitor;
    int breakdowns = 0;

    for (int seed = 0; seed < seeds; ++seed) {
      synth::GluedSpec spec;
      spec.n = n;
      spec.panels = panels;
      spec.panel_cols = s;
      spec.kappa_panel = kappa;
      spec.growth = 1.0;
      const Matrix v0 = synth::glued(spec, static_cast<std::uint64_t>(seed));

      bool ok = false;
      double mon = 0.0;
      const Matrix q1 = sweep(
          v0, s,
          [](ortho::OrthoContext& c, dense::ConstMatrixView q,
             dense::MatrixView v, dense::MatrixView rp, dense::MatrixView rd) {
            ortho::bcgs_pip(c, q, v, rp, rd);
          },
          &ok, &mon);
      if (mon > 0.0) monitor.add(mon);
      if (!ok) {
        ++breakdowns;
        continue;
      }
      e1.add(dense::orthogonality_error(q1.view()));
      cq.add(dense::cond_2(q1.view()));

      const Matrix q2 = sweep(
          v0, s,
          [](ortho::OrthoContext& c, dense::ConstMatrixView q,
             dense::MatrixView v, dense::MatrixView rp, dense::MatrixView rd) {
            ortho::bcgs_pip2(c, q, v, rp, rd);
          },
          &ok);
      if (ok) e2.add(dense::orthogonality_error(q2.view()));

      const Matrix qb = sweep(
          v0, s,
          [](ortho::OrthoContext& c, dense::ConstMatrixView q,
             dense::MatrixView v, dense::MatrixView rp, dense::MatrixView rd) {
            ortho::bcgs2(c, q, v, rp, rd, ortho::IntraKind::kCholQR2);
          },
          &ok);
      if (ok) eb.add(dense::orthogonality_error(qb.view()));
    }

    table.row().add(util::sci(kappa, 0));
    table.add(monitor.count() ? util::sci(monitor.mean()) : "-")
        .add(e1.count() ? util::sci(e1.mean()) : "-")
        .add(cq.count() ? util::sci(cq.mean()) : "-")
        .add(e2.count() ? util::sci(e2.mean()) : "-")
        .add(eb.count() ? util::sci(eb.mean()) : "-")
        .add(breakdowns);
  }
  table.print();
  return 0;
}
