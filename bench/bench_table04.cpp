// Reproduces paper Table IV: time per iteration for 3-D model problems
// and the SuiteSparse surrogate matrices, four solvers each.
//
// Paper: matrices of 1-1.5M rows on 16 Summit nodes (96 GPUs), time
// per iteration (ms) with ortho/total speedups over standard GMRES.
// Here: shrunk matrices, fixed rank count with the cluster model.
// Expected shape per matrix: ortho time/iter ordering
//   standard > s-step(BCGS2) > BCGS-PIP2 > two-stage,
// ortho speedups in the broad ranges the paper reports (s-step ~2x,
// PIP2 ~4x, two-stage ~5-9x) and total speedups 1.3-2.9x depending on
// the SpMV weight (heavier rows => smaller ortho share).
//
//   bench_table04 [--n=100000] [--ranks=8] [--restarts=2] [--net=cluster]

#include "bench_common.hpp"

#include "sparse/generators.hpp"
#include "sparse/scaling.hpp"
#include "sparse/suitesparse_like.hpp"

#include <cmath>
#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  using namespace tsbo::bench;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int n = cli.get_int("n", 60000);
  const int ranks = cli.get_int("ranks", 8);
  const int restarts = cli.get_int("restarts", 2);
  const long iters = 60L * restarts;

  std::printf(
      "# Table IV reproduction: time/iteration, 3-D models + "
      "SuiteSparse surrogates (n ~ %d, %d ranks, %ld iters each)\n"
      "# expected shape: ortho ms/iter ordering standard > s-step > "
      "bcgs-pip2 > two-stage for every matrix\n\n",
      n, ranks, iters);

  struct Algo {
    const char* name;
    int scheme;
  };
  const Algo algos[] = {
      {"standard", -1},
      {"s-step", static_cast<int>(krylov::OrthoScheme::kBcgs2CholQr2)},
      {"bcgs-pip2", static_cast<int>(krylov::OrthoScheme::kBcgsPip2)},
      {"two-stage", static_cast<int>(krylov::OrthoScheme::kTwoStage)},
  };

  util::Table table({"matrix", "solver", "SpMV ms/it", "Ortho ms/it",
                     "Total ms/it", "ortho speedup", "total speedup"});

  auto run_matrix = [&](const std::string& label, const sparse::CsrMatrix& a) {
    const auto b = ones_rhs(a);
    RunSpec spec;
    spec.ranks = ranks;
    spec.model = model_from_cli(cli);
    spec.max_restarts = restarts;

    double base_ortho = 0.0, base_total = 0.0;
    for (const Algo& algo : algos) {
      spec.scheme = algo.scheme;
      const auto r = run_distributed(a, b, spec);
      const double it = static_cast<double>(r.iters > 0 ? r.iters : 1);
      if (algo.scheme == -1) {
        base_ortho = r.time_ortho();
        base_total = r.time_total();
      }
      table.row()
          .add(label)
          .add(algo.name)
          .add(1e3 * r.time_spmv() / it, 3)
          .add(1e3 * r.time_ortho() / it, 3)
          .add(1e3 * r.time_total() / it, 3)
          .add(util::speedup_str(base_ortho, r.time_ortho()))
          .add(util::speedup_str(base_total, r.time_total()));
    }
    table.separator();
  };

  // 3-D model problems (paper rows 1-2).
  {
    const int side = static_cast<int>(std::lround(std::cbrt(n)));
    run_matrix("Laplace3D", sparse::laplace3d_7pt(side, side, side));
    const int eside = static_cast<int>(std::lround(std::cbrt(n / 3)));
    run_matrix("Elasticity3D", sparse::elasticity3d(eside, eside, eside));
  }
  // SuiteSparse surrogates (paper rows 3-7), max-scaled per Section VI.
  for (const auto& name : sparse::table4_surrogate_names()) {
    auto sur = sparse::make_surrogate(name, n);
    sparse::equilibrate_max(sur.matrix);
    run_matrix(name, sur.matrix);
  }
  table.print();
  return 0;
}
