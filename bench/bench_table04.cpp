// Reproduces paper Table IV: time per iteration for 3-D model problems
// and the SuiteSparse surrogate matrices, four solvers each.
//
// Paper: matrices of 1-1.5M rows on 16 Summit nodes (96 GPUs), time
// per iteration (ms) with ortho/total speedups over standard GMRES.
// Here: shrunk matrices, fixed rank count with the cluster model.
// Expected shape per matrix: ortho time/iter ordering
//   standard > s-step(BCGS2) > BCGS-PIP2 > two-stage,
// ortho speedups in the broad ranges the paper reports (s-step ~2x,
// PIP2 ~4x, two-stage ~5-9x) and total speedups 1.3-2.9x depending on
// the SpMV weight (heavier rows => smaller ortho share).
//
//   bench_table04 [--n=100000] [--ranks=8] [--restarts=2] [--net=cluster]
//                 [--json=table04.json]

#include "bench_common.hpp"

#include "par/config.hpp"
#include "sparse/suitesparse_like.hpp"

#include <cmath>
#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  using namespace tsbo::bench;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int n = cli.get_int("n", 60000);
  const int ranks = cli.get_int("ranks", 8);
  const int restarts = cli.get_int("restarts", 2);
  const long iters = 60L * restarts;
  const std::string json_path = cli.get("json", "");

  api::SolverOptions base = api::SolverOptions::parse("rtol=0");
  base.ranks = ranks;
  base.n = n;
  base.net = cli.get("net", "calibrated");
  base.max_restarts = restarts;
  cli.reject_unknown();

  std::printf(
      "# Table IV reproduction: time/iteration, 3-D models + "
      "SuiteSparse surrogates (n ~ %d, %d ranks, %ld iters each)\n"
      "# expected shape: ortho ms/iter ordering standard > s-step > "
      "bcgs-pip2 > two-stage for every matrix\n\n",
      n, ranks, iters);

  util::Table table({"matrix", "solver", "SpMV ms/it", "Ortho ms/it",
                     "Total ms/it", "ortho speedup", "total speedup",
                     "comm exp s", "comm ovl s"});
  api::ReportLog log("table04");

  // Runs the four solver columns on the matrix the options describe.
  const auto run_matrix = [&](const api::SolverOptions& matrix_opts) {
    std::string label;
    const sparse::CsrMatrix a = api::make_matrix(matrix_opts, &label);
    const std::vector<double> b = api::ones_rhs(a);

    double base_ortho = 0.0, base_total = 0.0;
    for (const Algo& algo : kPaperAlgos) {
      api::Solver solver(api::SolverOptions::parse(algo.spec, matrix_opts));
      solver.set_matrix_ref(a, label);
      solver.set_rhs(b);
      const api::SolveReport rep = solver.solve();
      const krylov::SolveResult& r = rep.result;
      const double it = static_cast<double>(r.iters > 0 ? r.iters : 1);
      if (!rep.options.is_sstep()) {
        base_ortho = r.time_ortho();
        base_total = r.time_total();
      }
      table.row()
          .add(label)
          .add(algo.label)
          .add(1e3 * r.time_spmv() / it, 3)
          .add(1e3 * r.time_ortho() / it, 3)
          .add(1e3 * r.time_total() / it, 3)
          .add(util::speedup_str(base_ortho, r.time_ortho()))
          .add(util::speedup_str(base_total, r.time_total()))
          .add(r.comm_stats.injected_seconds, 3)
          .add(r.comm_stats.overlapped_seconds, 3);
      log.add(rep);
    }
    table.separator();
  };

  // 3-D model problems (paper rows 1-2).
  {
    api::SolverOptions opts = base;
    opts.matrix = "laplace3d_7pt";
    opts.nx = static_cast<int>(std::lround(std::cbrt(n)));
    run_matrix(opts);
    opts.matrix = "elasticity3d";
    opts.nx = static_cast<int>(std::lround(std::cbrt(n / 3)));
    run_matrix(opts);
  }
  // SuiteSparse surrogates (paper rows 3-7), max-scaled per Section VI.
  for (const auto& name : sparse::table4_surrogate_names()) {
    api::SolverOptions opts = base;
    opts.matrix = name;
    opts.equilibrate = true;
    run_matrix(opts);
  }
  table.print();
  if (log.save(json_path)) std::printf("\n# wrote %s\n", json_path.c_str());
  return 0;
}
