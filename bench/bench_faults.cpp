// Fault-storm workload for the hardened solver service: N jobs with a
// seeded mix of injected faults (throws, delays, bit-flip corruption,
// deadline blowouts) plus a quarantine demonstration, driven through
// SolverService so every resilience layer is exercised at once —
// retry/backoff, cooperative deadlines, per-spec quarantine, and the
// verify_residual soundness guard.
//
// Everything is deterministic: the job mix comes from one Xoshiro256
// seeded by --seed, the fault plans address sites by ordinal, and the
// service's FIFO dispatch is pinned, so two runs with the same seed
// produce identical outcome trails.
//
// Verified invariants (exit 1 on violation):
//   - every submitted job reaches a terminal outcome (the queue
//     drains; nothing wedges behind an injected fault),
//   - every ok job passes an INDEPENDENT serial residual recompute
//     against a freshly assembled operator — no corrupted solve
//     escapes marked ok,
//   - ok jobs whose final attempt ran fault-free (clean, delay-only,
//     and retried-throw jobs; one-shot faults do not re-fire) are
//     bitwise identical to the clean reference solution,
//   - the quarantine demo resolves failed, failed, quarantined,
//     quarantined in submission order,
//   - deadline jobs time out rather than fail or wedge.
//
// Also reports the wall-clock overhead of the residual guard
// (verify_residual=1 vs 0 on the clean spec) and the outcome/attempt
// histogram of the storm.
//
//   bench_faults [--seed=7] [--jobs=24] [--nx=24] [--ranks=2]
//                [--json=faults.json]

#include "bench_common.hpp"

#include "par/config.hpp"
#include "service/solver_service.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace {

// Independent soundness check: serial ||b - A x|| / ||b|| against a
// freshly assembled operator (never the service's cached state), held
// to the same Carson-Ma-style gap the in-solve guard enforces.
bool residual_sound(const tsbo::sparse::CsrMatrix& a,
                    const std::vector<double>& x,
                    const tsbo::api::SolveReport& rep) {
  const std::size_t n = static_cast<std::size_t>(a.rows);
  if (x.size() != n) return false;
  // Service jobs solve the operator's ones-RHS: b = A * ones, so the
  // exact solution is the all-ones vector.
  const std::vector<double> ones(n, 1.0);
  std::vector<double> b(n);
  tsbo::sparse::spmv(a, ones, b);
  std::vector<double> ax(n);
  tsbo::sparse::spmv(a, x, ax);
  double rr = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ri = b[i] - ax[i];
    rr += ri * ri;
    bb += b[i] * b[i];
  }
  const double true_rel = std::sqrt(rr / bb);
  const double tol = tsbo::api::kResidualGuardFactor *
                     std::max(rep.result.relres, rep.options.rtol);
  return std::isfinite(true_rel) && true_rel <= tol;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const int njobs = cli.get_int("jobs", 24);
  const int nx = cli.get_int("nx", 24);
  const int ranks = cli.get_int("ranks", 2);
  const std::string json_path = cli.get("json", "");
  cli.reject_unknown();

  // One converging base spec: every storm job is this solve plus an
  // injected fault, so ok jobs are comparable across the mix.
  api::SolverOptions base = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage m=20 s=5 bs=20 rtol=1e-8 "
      "max_restarts=1000000 precond=none matrix=laplace2d_5pt");
  base.nx = nx;
  base.ranks = ranks;
  base.verify_residual = 1;

  std::printf(
      "# fault storm: %d jobs on laplace2d_5pt nx=%d ranks=%d, seed=%llu\n"
      "# invariants: queue drains; ok jobs pass an independent residual\n"
      "# recompute; fault-free-final-attempt ok jobs bitwise == clean\n\n",
      njobs, nx, ranks, static_cast<unsigned long long>(seed));

  sparse::CsrMatrix a = sparse::laplace2d_5pt(nx, nx);

  service::ServiceConfig cfg;
  cfg.label = "bench_faults";
  cfg.retry_backoff_ms = 1;
  service::SolverService svc(cfg);

  // Clean reference for the bitwise check.
  const service::JobResult ref = svc.wait(svc.submit(base));
  if (ref.outcome != service::JobOutcome::kOk ||
      !residual_sound(a, ref.solution, ref.report)) {
    std::printf("!! clean reference solve failed\n");
    return 1;
  }

  // ---- the storm ------------------------------------------------------
  util::Xoshiro256 rng(seed);
  enum Kind { kClean = 0, kCorrupt, kThrowRetry, kDelay, kDeadline };
  const char* kind_name[] = {"clean", "corrupt", "throw+retry", "delay",
                             "deadline"};
  std::vector<std::uint64_t> ids;
  std::vector<Kind> kinds;
  for (int j = 0; j < njobs; ++j) {
    const Kind kind = static_cast<Kind>(rng.uniform_index(5));
    api::SolverOptions o = base;
    const long ord = static_cast<long>(rng.uniform_index(32));
    switch (kind) {
      case kClean:
        break;
      case kCorrupt:
        // Globally-addressed sites only: the corrupted row is
        // rank-count-invariant, and the restart residual recompute
        // heals the detour (GuardTest pins this), so the job must
        // come back ok and residual-sound.
        o.faults = (rng.uniform_index(2) == 0 ? "spmv.interior@"
                                              : "comm.exchange@") +
                   std::to_string(ord) + ":corrupt";
        break;
      case kThrowRetry:
        // One-shot injected throw + one retry: the retry's attempt
        // runs fault-free and must be bitwise clean.
        o.faults = "comm.allreduce@" + std::to_string(ord) + ":throw";
        o.retries = 1;
        break;
      case kDelay:
        o.faults = "gram.stage1@" + std::to_string(ord % 8) + ":delay5";
        break;
      case kDeadline:
        // A deadline far below the injected stall: must resolve
        // timed_out, not failed, and must not wedge the queue.
        o.faults = "spmv.interior@0:delay250";
        o.deadline_ms = 40;
        break;
    }
    ids.push_back(svc.submit(o));
    kinds.push_back(kind);
  }

  // Quarantine demo: one deliberately hopeless spec, submitted four
  // times with quarantine_after=2 -> failed, failed, quarantined,
  // quarantined in submission order.
  api::SolverOptions doomed = base;
  doomed.faults = "comm.allreduce@0:throw;comm.allreduce@1:throw;"
                  "comm.allreduce@2:throw;comm.allreduce@3:throw";
  doomed.retries = 2;
  doomed.quarantine_after = 2;
  std::vector<std::uint64_t> doomed_ids;
  for (int j = 0; j < 4; ++j) doomed_ids.push_back(svc.submit(doomed));

  bool ok = true;
  std::map<std::string, int> histogram;
  long retried_attempts = 0;
  int detours = 0;
  for (std::size_t j = 0; j < ids.size(); ++j) {
    const service::JobResult r = svc.wait(ids[j]);
    histogram[to_string(r.outcome)] += 1;
    retried_attempts += r.attempts - 1;
    const Kind kind = kinds[j];
    const char* name = kind_name[kind];
    if (kind == kDeadline) {
      if (r.outcome != service::JobOutcome::kTimedOut) {
        std::printf("!! job %llu (%s): expected timed_out, got %s\n",
                    static_cast<unsigned long long>(r.id), name,
                    to_string(r.outcome));
        ok = false;
      }
      continue;
    }
    if (r.outcome != service::JobOutcome::kOk) {
      std::printf("!! job %llu (%s): expected ok, got %s (%s)\n",
                  static_cast<unsigned long long>(r.id), name,
                  to_string(r.outcome), r.error.c_str());
      ok = false;
      continue;
    }
    if (!residual_sound(a, r.solution, r.report)) {
      std::printf("!! job %llu (%s): ok but fails the independent "
                  "residual recompute\n",
                  static_cast<unsigned long long>(r.id), name);
      ok = false;
    }
    // Jobs whose final attempt ran without a live numeric fault must
    // reproduce the clean bits: clean and delay trivially, retried
    // throws because one-shot faults do not re-fire.
    const bool final_attempt_clean = kind != kCorrupt;
    if (final_attempt_clean && r.solution != ref.solution) {
      std::printf("!! job %llu (%s): fault-free final attempt is not "
                  "bitwise clean\n",
                  static_cast<unsigned long long>(r.id), name);
      ok = false;
    }
    if (kind == kCorrupt && r.solution != ref.solution) {
      // Informational: the flip detoured the trajectory (a flip landing
      // on a near-zero entry can legitimately wash out in rounding).
      detours += 1;
    }
  }

  const char* expected_doom[] = {"failed", "failed", "quarantined",
                                 "quarantined"};
  for (std::size_t j = 0; j < doomed_ids.size(); ++j) {
    const service::JobResult r = svc.wait(doomed_ids[j]);
    histogram[to_string(r.outcome)] += 1;
    if (std::string(to_string(r.outcome)) != expected_doom[j]) {
      std::printf("!! quarantine demo job %zu: expected %s, got %s\n", j,
                  expected_doom[j], to_string(r.outcome));
      ok = false;
    }
  }

  util::Table table({"outcome", "jobs"});
  for (const auto& [name, count] : histogram) {
    table.row().add(name).add(static_cast<long>(count));
  }
  table.print();
  std::printf("# retries used across the storm: %ld; corrupt jobs that "
              "detoured the trajectory: %d\n",
              retried_attempts, detours);

  // ---- guard overhead -------------------------------------------------
  api::SolverOptions unguarded = base;
  unguarded.verify_residual = 0;
  util::WallTimer t_off;
  (void)svc.wait(svc.submit(unguarded));
  const double off_s = t_off.seconds();
  util::WallTimer t_on;
  (void)svc.wait(svc.submit(base));
  const double on_s = t_on.seconds();
  std::printf(
      "# residual guard overhead: %.3fs guarded vs %.3fs unguarded "
      "(+%.1f%%; one serial spmv + norm)\n",
      on_s, off_s, 100.0 * (on_s - off_s) / off_s);

  if (svc.log().save(json_path)) {
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
