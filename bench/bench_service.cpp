// Persistent solver service throughput: warm (cached operator) vs cold
// (full setup) repeat solves at mixed matrix sizes.
//
// The paper's amortization argument — setup-heavy two-stage
// BCGS+CholQR pays off over many panels — extends to whole solves once
// a long-lived service reuses per-operator setup (matrix assembly,
// partitioned DistCsr + comm plan, preconditioner eigenvalue estimate,
// ones-RHS) across requests.  This harness measures that extension:
//
//   phase cold  — fresh service, one solve per size (every job pays
//                 full operator setup; cache misses)
//   phase warm  — same service, `repeat` solves per size (operator
//                 cache hits; setup amortized away)
//   warm-start  — converging repeat solve with warm_start=1 seeded
//                 from the previous solution vs the same solve cold
//
// Verified invariants (exit 1 on violation): warm solutions are
// bitwise-identical to cold solutions (warm_start=0), every warm-phase
// job is a cache hit, and the warm-start solve takes strictly fewer
// iterations.
//
//   bench_service [--nx=48,64,80] [--ranks=2] [--repeat=4] [--m=30]
//                 [--s=5] [--bs=30] [--precond=chebyshev]
//                 [--json=service.json]
//
// Small --m with large --nx makes the jobs setup-dominated (the CI
// gate's shape); the defaults are solve-dominated throughput numbers.

#include "bench_common.hpp"

#include "par/config.hpp"
#include "service/solver_service.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);
  const std::vector<int> sizes = cli.get_int_list("nx", {48, 64, 80});
  const int ranks = cli.get_int("ranks", 2);
  const int repeat = cli.get_int("repeat", 4);
  const std::string precond = cli.get("precond", "chebyshev");
  const std::string json_path = cli.get("json", "");
  const int m = cli.get_int("m", 30);
  const int s = cli.get_int("s", 5);
  const int bs = cli.get_int("bs", m);
  cli.reject_unknown();

  // Fixed work per throughput job (an unreachable rtol runs the whole
  // restart budget), so cold and warm phases solve identical problems
  // and the setup share is what differs.
  api::SolverOptions base = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage m=30 s=5 bs=30 rtol=1e-300 "
      "max_restarts=1");
  base.m = m;
  base.s = s;
  base.bs = bs;
  base.precond = precond;
  base.ranks = ranks;

  const auto spec_for = [&base](int nx) {
    api::SolverOptions o = base;
    o.nx = nx;
    return o;
  };

  std::printf(
      "# service throughput: %d sizes x ranks=%d, precond=%s; cold = "
      "operator setup per job, warm = keyed-cache reuse (%d repeats)\n"
      "# invariants: warm bitwise == cold; warm jobs all cache hits; "
      "warm-start iters strictly below cold\n\n",
      static_cast<int>(sizes.size()), ranks, precond.c_str(), repeat);

  service::ServiceConfig cfg;
  cfg.label = "bench_service";
  service::SolverService svc(cfg);

  // ---- cold phase: every size once, fresh cache -----------------------
  util::WallTimer cold_timer;
  std::vector<std::uint64_t> cold_ids;
  for (const int nx : sizes) cold_ids.push_back(svc.submit(spec_for(nx)));
  std::map<int, service::JobResult> cold;  // nx -> result
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    cold[sizes[i]] = svc.wait(cold_ids[i]);
  }
  const double cold_seconds = cold_timer.seconds();

  // ---- warm phase: `repeat` hits per size -----------------------------
  util::WallTimer warm_timer;
  std::vector<std::uint64_t> warm_ids;
  for (int rep = 0; rep < repeat; ++rep) {
    for (const int nx : sizes) warm_ids.push_back(svc.submit(spec_for(nx)));
  }
  std::vector<service::JobResult> warm;
  for (const std::uint64_t id : warm_ids) warm.push_back(svc.wait(id));
  const double warm_seconds = warm_timer.seconds();

  bool ok = true;
  for (const service::JobResult& w : warm) {
    if (!w.error.empty()) {
      std::printf("!! warm job %llu failed: %s\n",
                  static_cast<unsigned long long>(w.id), w.error.c_str());
      ok = false;
      continue;
    }
    if (!w.report.service.cache_hit) {
      std::printf("!! warm job %llu missed the operator cache\n",
                  static_cast<unsigned long long>(w.id));
      ok = false;
    }
    const service::JobResult& c = cold[w.report.options.nx];
    if (w.solution != c.solution) {
      std::printf("!! nx=%d: warm solution differs from cold (bitwise)\n",
                  w.report.options.nx);
      ok = false;
    }
  }

  const double cold_rate = static_cast<double>(cold_ids.size()) / cold_seconds;
  const double warm_rate = static_cast<double>(warm_ids.size()) / warm_seconds;

  util::Table table({"phase", "jobs", "seconds", "solves/sec", "setup s/job",
                     "cache hits"});
  double cold_setup = 0.0;
  for (const auto& [nx, r] : cold) cold_setup += r.report.service.setup_seconds;
  table.row()
      .add("cold")
      .add(static_cast<long>(cold_ids.size()))
      .add(cold_seconds, 3)
      .add(cold_rate, 2)
      .add(cold_setup / static_cast<double>(cold_ids.size()), 4)
      .add(0L);
  table.row()
      .add("warm")
      .add(static_cast<long>(warm_ids.size()))
      .add(warm_seconds, 3)
      .add(warm_rate, 2)
      .add(0.0, 4)
      .add(static_cast<long>(warm_ids.size()));
  table.print();
  std::printf("\n# warm/cold throughput: %.2fx\n", warm_rate / cold_rate);

  // ---- warm start: converging repeat solve seeded from the previous
  // solution -----------------------------------------------------------
  api::SolverOptions conv = spec_for(sizes.front());
  conv.rtol = 1e-8;
  conv.max_restarts = 1000000;
  // A solve-friendly restart length regardless of the throughput
  // shape: tiny --m (the setup-dominated gate mix) makes restarted
  // convergence at 1e-8 pathologically slow.
  conv.m = 30;
  conv.s = 5;
  conv.bs = 30;
  const service::JobResult conv_cold = svc.wait(svc.submit(conv));
  conv.warm_start = 1;
  const service::JobResult conv_warm = svc.wait(svc.submit(conv));
  std::printf(
      "# warm start (nx=%d, rtol=1e-8): cold iters=%ld, warm-start "
      "iters=%ld (seeded from previous solution)\n",
      sizes.front(), conv_cold.report.result.iters,
      conv_warm.report.result.iters);
  if (!conv_warm.report.service.warm_started ||
      conv_warm.report.result.iters >= conv_cold.report.result.iters) {
    std::printf("!! warm-start solve did not cut the iteration count\n");
    ok = false;
  }

  const service::OperatorCache::Stats stats = svc.cache_stats();
  std::printf(
      "# operator cache: %llu hits, %llu misses, %llu evictions, %zu "
      "entries, %.1f MB\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.evictions), svc.cache().size(),
      static_cast<double>(svc.cache().total_bytes()) / (1024.0 * 1024.0));

  if (svc.log().save(json_path)) {
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
