// Reproduces paper Fig. 10: orthogonalization time breakdown of
// BCGS2 + CholQR2 (the original s-step GMRES) vs rank count, for the
// 2-D Laplace problem — absolute seconds and fraction of ortho time.
//
// Expected shape: as ranks grow, the "dot-products + global reduce"
// share grows and dominates (the global reduces appear in both BCGS2
// and CholQR), while vector updates shrink with the local row count.
//
//   bench_fig10 [--nx=512] [--ranks=1,2,4,8,16] [--restarts=2] [--net=cluster]

#include "bench_common.hpp"

#include "sparse/generators.hpp"

#include <cstdio>

namespace tsbo::bench {

/// Shared driver for Figs. 10-12: one scheme, rank sweep, breakdown.
inline int run_breakdown_figure(int argc, char** argv, const char* figure,
                                int scheme, const char* scheme_name) {
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nx = cli.get_int("nx", 192);
  const std::vector<int> rank_list =
      cli.get_int_list("ranks", {1, 2, 4, 8, 16});
  const int restarts = cli.get_int("restarts", 2);

  const auto a = sparse::laplace2d_5pt(nx, nx);
  const auto b = ones_rhs(a);

  std::printf(
      "# %s reproduction: ortho time breakdown of %s, 2-D Laplace "
      "n=%dx%d, %d restarts\n"
      "# expected shape: reduce (global all-reduce) share grows with "
      "ranks; update/dot shares shrink\n\n",
      figure, scheme_name, nx, nx, restarts);

  util::Table table({"ranks", "dot s", "reduce s", "update s", "factor s",
                     "small s", "dot %", "reduce %", "update %", "factor %"});

  for (const int p : rank_list) {
    RunSpec spec;
    spec.ranks = p;
    spec.model = model_from_cli(cli);
    spec.max_restarts = restarts;
    spec.scheme = scheme;
    const auto r = run_distributed(a, b, spec);
    const OrthoBreakdown bd = breakdown_of(r);
    const double tot = bd.total() > 0 ? bd.total() : 1.0;
    table.row()
        .add(p)
        .add(bd.dot, 3)
        .add(bd.reduce, 3)
        .add(bd.update, 3)
        .add(bd.factor, 3)
        .add(bd.small, 3)
        .add(100.0 * bd.dot / tot, 1)
        .add(100.0 * bd.reduce / tot, 1)
        .add(100.0 * bd.update / tot, 1)
        .add(100.0 * bd.factor / tot, 1);
  }
  table.print();
  return 0;
}

}  // namespace tsbo::bench

#ifndef TSBO_BREAKDOWN_NO_MAIN
int main(int argc, char** argv) {
  using namespace tsbo;
  return bench::run_breakdown_figure(
      argc, argv, "Fig. 10",
      static_cast<int>(krylov::OrthoScheme::kBcgs2CholQr2), "BCGS2+CholQR2");
}
#endif
