// Reproduces paper Fig. 10: orthogonalization time breakdown of
// BCGS2 + CholQR2 (the original s-step GMRES) vs rank count, for the
// 2-D Laplace problem — absolute seconds and fraction of ortho time.
//
// Expected shape: as ranks grow, the "dot-products + global reduce"
// share grows and dominates (the global reduces appear in both BCGS2
// and CholQR), while vector updates shrink with the local row count.
//
//   bench_fig10 [--nx=512] [--ranks=1,2,4,8,16] [--restarts=2]
//               [--net=cluster] [--pipeline_depth=1] [--json=fig10.json]
//
// --pipeline_depth=1 credits the next panel's matrix-powers compute
// against the stage-1 reduce window (pipelined s-step runtime); the
// solution is bitwise-identical at every depth, only the exposed
// ("comm exp s") vs overlapped ("comm ovl s") split moves.

#include "bench_common.hpp"

#include "par/config.hpp"

#include <cstdio>

namespace tsbo::bench {

/// Shared driver for Figs. 10-12: one scheme, rank sweep, breakdown.
inline int run_breakdown_figure(int argc, char** argv, const char* figure,
                                const char* spec, const char* scheme_name) {
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nx = cli.get_int("nx", 192);
  const std::vector<int> rank_list =
      cli.get_int_list("ranks", {1, 2, 4, 8, 16});
  const int restarts = cli.get_int("restarts", 2);
  const std::string json_path = cli.get("json", "");

  api::SolverOptions base =
      api::SolverOptions::parse(std::string(spec) +
                                " matrix=laplace2d_5pt rtol=0");
  base.nx = nx;
  base.net = cli.get("net", "calibrated");
  base.max_restarts = restarts;
  base.pipeline_depth = cli.get_int("pipeline_depth", 0);
  cli.reject_unknown();

  const sparse::CsrMatrix a = api::make_matrix(base);
  const std::vector<double> b = api::ones_rhs(a);

  std::printf(
      "# %s reproduction: ortho time breakdown of %s, 2-D Laplace "
      "n=%dx%d, %d restarts\n"
      "# expected shape: reduce (global all-reduce) share grows with "
      "ranks; update/dot shares shrink\n\n",
      figure, scheme_name, nx, nx, restarts);

  util::Table table({"ranks", "dot s", "reduce s", "update s", "factor s",
                     "small s", "dot %", "reduce %", "update %", "factor %",
                     "comm exp s", "comm ovl s", "lkh hit", "lkh miss"});
  api::ReportLog log(figure);

  for (const int p : rank_list) {
    api::SolverOptions opts = base;
    opts.ranks = p;
    api::Solver solver(opts);
    solver.set_matrix_ref(a, base.matrix);
    solver.set_rhs(b);
    const api::SolveReport rep = solver.solve();
    const api::OrthoBreakdown bd = api::breakdown_of(rep.result);
    const double tot = bd.total() > 0 ? bd.total() : 1.0;
    table.row()
        .add(p)
        .add(bd.dot, 3)
        .add(bd.reduce, 3)
        .add(bd.update, 3)
        .add(bd.factor, 3)
        .add(bd.small, 3)
        .add(100.0 * bd.dot / tot, 1)
        .add(100.0 * bd.reduce / tot, 1)
        .add(100.0 * bd.update / tot, 1)
        .add(100.0 * bd.factor / tot, 1)
        .add(rep.result.comm_stats.injected_seconds, 3)
        .add(rep.result.comm_stats.overlapped_seconds, 3)
        .add(rep.result.lookahead_hits)
        .add(rep.result.lookahead_misses);
    log.add(rep);
  }
  table.print();
  if (log.save(json_path)) std::printf("\n# wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace tsbo::bench

#ifndef TSBO_BREAKDOWN_NO_MAIN
int main(int argc, char** argv) {
  using namespace tsbo;
  return bench::run_breakdown_figure(argc, argv, "Fig. 10",
                                     "solver=sstep ortho=bcgs2",
                                     "BCGS2+CholQR2");
}
#endif
