// Reproduces paper Fig. 13: time-per-iteration breakdown of s-step
// GMRES with the local (multicolor) Gauss-Seidel preconditioner —
// block Jacobi across ranks with Gauss-Seidel in each block — for the
// 2-D Laplace problem, with ortho/total speedups over standard GMRES.
//
// Expected shape: the preconditioner adds a flat "precond" slab to all
// four solvers; the ortho ordering and speedups match Table III's, but
// total speedups shrink slightly since ortho is a smaller share.
//
//   bench_fig13 [--nx=512] [--ranks=8] [--restarts=2] [--net=cluster]
//               [--pipeline_depth=1] [--json=fig13.json]
//
// --pipeline_depth=1 enables overlap credit for the pipelined s-step
// runtime (bitwise-identical solutions; see bench_fig10.cpp).

#include "bench_common.hpp"

#include "par/config.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  using namespace tsbo::bench;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nx = cli.get_int("nx", 192);
  const int ranks = cli.get_int("ranks", 8);
  const int restarts = cli.get_int("restarts", 2);
  const std::string json_path = cli.get("json", "");

  api::SolverOptions base =
      api::SolverOptions::parse("matrix=laplace2d_5pt precond=mc-gs rtol=0");
  base.nx = nx;
  base.ranks = ranks;
  base.net = cli.get("net", "calibrated");
  base.max_restarts = restarts;
  base.pipeline_depth = cli.get_int("pipeline_depth", 0);
  cli.reject_unknown();

  const sparse::CsrMatrix a = api::make_matrix(base);
  const std::vector<double> b = api::ones_rhs(a);

  std::printf(
      "# Fig. 13 reproduction: s-step GMRES + multicolor Gauss-Seidel "
      "preconditioner, 2-D Laplace n=%dx%d, %d ranks\n"
      "# expected shape: same ortho ordering as Table III; total "
      "speedups slightly smaller (precond adds flat cost)\n\n",
      nx, nx, ranks);

  util::Table table({"solver", "SpMV ms/it", "Precond ms/it", "Ortho ms/it",
                     "Total ms/it", "ortho speedup", "total speedup",
                     "comm exp s", "comm ovl s", "lkh hit", "lkh miss"});
  api::ReportLog log("fig13");

  double base_ortho = 0.0, base_total = 0.0;
  for (const Algo& algo : kPaperAlgos) {
    api::Solver solver(api::SolverOptions::parse(algo.spec, base));
    solver.set_matrix_ref(a, base.matrix);
    solver.set_rhs(b);
    const api::SolveReport rep = solver.solve();
    const krylov::SolveResult& r = rep.result;
    const double it = static_cast<double>(r.iters > 0 ? r.iters : 1);
    if (!rep.options.is_sstep()) {
      base_ortho = r.time_ortho();
      base_total = r.time_total();
    }
    table.row()
        .add(algo.label)
        .add(1e3 * r.time_spmv() / it, 3)
        .add(1e3 * r.time_precond() / it, 3)
        .add(1e3 * r.time_ortho() / it, 3)
        .add(1e3 * r.time_total() / it, 3)
        .add(util::speedup_str(base_ortho, r.time_ortho()))
        .add(util::speedup_str(base_total, r.time_total()))
        .add(r.comm_stats.injected_seconds, 3)
        .add(r.comm_stats.overlapped_seconds, 3)
        .add(r.lookahead_hits)
        .add(r.lookahead_misses);
    log.add(rep);
  }
  table.print();
  if (log.save(json_path)) std::printf("\n# wrote %s\n", json_path.c_str());
  return 0;
}
