// Reproduces paper Fig. 13: time-per-iteration breakdown of s-step
// GMRES with the local (multicolor) Gauss-Seidel preconditioner —
// block Jacobi across ranks with Gauss-Seidel in each block — for the
// 2-D Laplace problem, with ortho/total speedups over standard GMRES.
//
// Expected shape: the preconditioner adds a flat "precond" slab to all
// four solvers; the ortho ordering and speedups match Table III's, but
// total speedups shrink slightly since ortho is a smaller share.
//
//   bench_fig13 [--nx=512] [--ranks=8] [--restarts=2] [--net=cluster]

#include "bench_common.hpp"

#include "sparse/generators.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  using namespace tsbo::bench;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nx = cli.get_int("nx", 192);
  const int ranks = cli.get_int("ranks", 8);
  const int restarts = cli.get_int("restarts", 2);

  const auto a = sparse::laplace2d_5pt(nx, nx);
  const auto b = ones_rhs(a);

  std::printf(
      "# Fig. 13 reproduction: s-step GMRES + multicolor Gauss-Seidel "
      "preconditioner, 2-D Laplace n=%dx%d, %d ranks\n"
      "# expected shape: same ortho ordering as Table III; total "
      "speedups slightly smaller (precond adds flat cost)\n\n",
      nx, nx, ranks, restarts);

  struct Algo {
    const char* name;
    int scheme;
  };
  const Algo algos[] = {
      {"GMRES+CGS2", -1},
      {"s-step BCGS2", static_cast<int>(krylov::OrthoScheme::kBcgs2CholQr2)},
      {"s-step PIP2", static_cast<int>(krylov::OrthoScheme::kBcgsPip2)},
      {"two-stage bs=m", static_cast<int>(krylov::OrthoScheme::kTwoStage)},
  };

  util::Table table({"solver", "SpMV ms/it", "Precond ms/it", "Ortho ms/it",
                     "Total ms/it", "ortho speedup", "total speedup"});

  RunSpec spec;
  spec.ranks = ranks;
  spec.model = model_from_cli(cli);
  spec.max_restarts = restarts;
  spec.gauss_seidel = true;

  double base_ortho = 0.0, base_total = 0.0;
  for (const Algo& algo : algos) {
    spec.scheme = algo.scheme;
    const auto r = run_distributed(a, b, spec);
    const double it = static_cast<double>(r.iters > 0 ? r.iters : 1);
    if (algo.scheme == -1) {
      base_ortho = r.time_ortho();
      base_total = r.time_total();
    }
    table.row()
        .add(algo.name)
        .add(1e3 * r.time_spmv() / it, 3)
        .add(1e3 * r.time_precond() / it, 3)
        .add(1e3 * r.time_ortho() / it, 3)
        .add(1e3 * r.time_total() / it, 3)
        .add(util::speedup_str(base_ortho, r.time_ortho()))
        .add(util::speedup_str(base_total, r.time_total()));
  }
  table.print();
  return 0;
}
