// Reproduces paper Table II: time-to-solution of the two-stage approach
// for different second step sizes bs, 2-D Laplace 5-pt, 4 ranks.
//
// Paper: n = 2000^2 on 4 V100 GPUs, s = 5, m = 60, run to convergence
// (~60k iterations).  Here: a shrunk grid, 4 rank-threads with the
// cluster network model, and a fixed restart budget so every column
// performs identical numerical work (the paper's iteration counts
// differ only by panel-granularity rounding; see the tests).
// Expected shape: Ortho time decreases monotonically with bs;
// bs = m is the best configuration; SpMV is flat across columns.
//
//   bench_table02 [--nx=512] [--ranks=4] [--restarts=3] [--net=cluster]
//                 [--json=table02.json]

#include "bench_common.hpp"

#include "par/config.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  using namespace tsbo::bench;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nx = cli.get_int("nx", 160);
  const int ranks = cli.get_int("ranks", 4);
  const int restarts = cli.get_int("restarts", 8);
  const std::string json_path = cli.get("json", "");

  api::SolverOptions base =
      api::SolverOptions::parse("matrix=laplace2d_5pt rtol=0");
  base.nx = nx;
  base.ranks = ranks;
  base.net = cli.get("net", "calibrated");
  base.max_restarts = restarts;
  cli.reject_unknown();

  const sparse::CsrMatrix a = api::make_matrix(base);
  const std::vector<double> b = api::ones_rhs(a);

  std::printf(
      "# Table II reproduction: two-stage vs bs, 2-D Laplace 5-pt "
      "n=%dx%d, %d ranks, s=5, m=60, %d restarts (%ld iters)\n"
      "# expected shape: Ortho decreases with bs; best at bs=m=60; "
      "SpMV flat\n\n",
      nx, nx, ranks, restarts, 60L * restarts);

  util::Table table({"solver", "# iters", "SpMV", "Ortho", "Total",
                     "comm exp s", "comm ovl s"});
  api::ReportLog log("table02");

  const auto run = [&](const std::string& name, const std::string& spec) {
    api::Solver solver(api::SolverOptions::parse(spec, base));
    solver.set_matrix_ref(a, base.matrix);
    solver.set_rhs(b);
    const api::SolveReport rep = solver.solve();
    table.row()
        .add(name)
        .add(rep.result.iters)
        .add(rep.result.time_spmv(), 3)
        .add(rep.result.time_ortho(), 3)
        .add(rep.result.time_total(), 3)
        .add(rep.result.comm_stats.injected_seconds, 3)
        .add(rep.result.comm_stats.overlapped_seconds, 3);
    log.add(rep);
  };

  // Standard GMRES + CGS2, then the original s-step (BCGS2 + CholQR2).
  run("GMRES", "solver=gmres ortho=cgs2");
  run("s-step", "solver=sstep ortho=bcgs2");
  table.separator();

  // Two-stage with bs sweep (bs = 5 degenerates to one-stage PIP2).
  for (const int bs : {5, 20, 30, 60}) {
    run("two-stage bs=" + std::to_string(bs),
        "solver=sstep ortho=two_stage bs=" + std::to_string(bs));
  }
  table.print();
  if (log.save(json_path)) std::printf("\n# wrote %s\n", json_path.c_str());
  return 0;
}
