// Reproduces paper Table II: time-to-solution of the two-stage approach
// for different second step sizes bs, 2-D Laplace 5-pt, 4 ranks.
//
// Paper: n = 2000^2 on 4 V100 GPUs, s = 5, m = 60, run to convergence
// (~60k iterations).  Here: a shrunk grid, 4 rank-threads with the
// cluster network model, and a fixed restart budget so every column
// performs identical numerical work (the paper's iteration counts
// differ only by panel-granularity rounding; see the tests).
// Expected shape: Ortho time decreases monotonically with bs;
// bs = m is the best configuration; SpMV is flat across columns.
//
//   bench_table02 [--nx=512] [--ranks=4] [--restarts=3] [--net=cluster]

#include "bench_common.hpp"

#include "sparse/generators.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  using namespace tsbo::bench;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nx = cli.get_int("nx", 160);
  const int ranks = cli.get_int("ranks", 4);
  const int restarts = cli.get_int("restarts", 8);

  const auto a = sparse::laplace2d_5pt(nx, nx);
  const auto b = ones_rhs(a);

  std::printf(
      "# Table II reproduction: two-stage vs bs, 2-D Laplace 5-pt "
      "n=%dx%d, %d ranks, s=5, m=60, %d restarts (%ld iters)\n"
      "# expected shape: Ortho decreases with bs; best at bs=m=60; "
      "SpMV flat\n\n",
      nx, nx, ranks, restarts, 60L * restarts);

  RunSpec spec;
  spec.ranks = ranks;
  spec.model = model_from_cli(cli);
  spec.max_restarts = restarts;

  util::Table table({"solver", "# iters", "SpMV", "Ortho", "Total"});
  auto add_row = [&](const std::string& name, const krylov::SolveResult& r) {
    table.row()
        .add(name)
        .add(r.iters)
        .add(r.time_spmv(), 3)
        .add(r.time_ortho(), 3)
        .add(r.time_total(), 3);
  };

  // Standard GMRES + CGS2.
  spec.scheme = -1;
  add_row("GMRES", run_distributed(a, b, spec));

  // Original s-step (BCGS2 + CholQR2).
  spec.scheme = static_cast<int>(krylov::OrthoScheme::kBcgs2CholQr2);
  add_row("s-step", run_distributed(a, b, spec));
  table.separator();

  // Two-stage with bs sweep (bs = 5 degenerates to one-stage PIP2).
  for (const int bs : {5, 20, 30, 60}) {
    spec.scheme = static_cast<int>(krylov::OrthoScheme::kTwoStage);
    spec.bs = bs;
    add_row("two-stage bs=" + std::to_string(bs), run_distributed(a, b, spec));
  }
  table.print();
  return 0;
}
