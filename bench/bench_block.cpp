// Batched multi-RHS block s-step GMRES throughput: one rhs=k batch vs
// k independent single-RHS solves of the same columns.
//
// The amortization thesis (ROADMAP "batched multi-RHS" item): a batch
// of k right-hand sides shares every fixed cost a solve pays per
// operator application — ONE halo exchange per SpMM regardless of k,
// ONE Gram reduce per orthogonalization stage (the two-stage panels
// get wider, not more numerous), ONE service dispatch and ONE cached
// operator acquisition per batch — while k independent solves pay all
// of them k times.  On a latency/setup-dominated shape (small m, a
// modeled network) time-per-RHS therefore FALLS with k.
//
//   bench_block [--k=1,2,4,8] [--nx=64] [--ranks=2] [--m=10] [--s=5]
//               [--bs=10] [--net=ethernet] [--precond=none]
//               [--json=block.json]
//
// Fixed work per run (unreachable rtol, max_restarts=1) so every k
// performs the same per-RHS basis work and the shared fixed costs are
// what differ.  GFLOP/s counts SpMV flops (2 * nnz per operator
// application per column) — a portable proxy that is comparable
// across k.
//
// Verified invariants (exit 1 on violation):
//   * every batched report carries per-RHS results[] of length k and
//     the tsbo.solve_report/7 schema tag;
//   * exactly one operator-cache acquisition per job: after the first
//     job the cache never misses (one hit per batch, not per RHS);
//   * the k=1 batch solution is bitwise-identical to the plain
//     single-RHS solve of the same column (the delegation contract);
//   * with 1 and 4 both in --k: batched k=4 time-per-RHS is strictly
//     below the k=1 time-per-RHS (the CI perf gate).

#include "bench_common.hpp"

#include "par/config.hpp"
#include "service/solver_service.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace tsbo;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);
  const std::vector<int> ks = cli.get_int_list("k", {1, 2, 4, 8});
  const int nx = cli.get_int("nx", 64);
  const int ranks = cli.get_int("ranks", 2);
  const int m = cli.get_int("m", 10);
  const int s = cli.get_int("s", 5);
  const int bs = cli.get_int("bs", m);
  const std::string net = cli.get("net", "ethernet");
  const std::string precond = cli.get("precond", "none");
  const std::string json_path = cli.get("json", "");
  cli.reject_unknown();

  api::SolverOptions base = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage rtol=1e-300 max_restarts=1");
  base.m = m;
  base.s = s;
  base.bs = bs;
  base.nx = nx;
  base.ranks = ranks;
  base.net = net;
  base.precond = precond;

  std::printf(
      "# block s-step GMRES batching: rhs=k batch vs k independent solves\n"
      "# nx=%d ranks=%d m=%d s=%d bs=%d net=%s precond=%s (fixed work: "
      "rtol=1e-300, max_restarts=1)\n"
      "# per-RHS time must FALL with k: one halo exchange per SpMM, one "
      "Gram reduce per stage, one dispatch per batch\n\n",
      nx, ranks, m, s, bs, net.c_str(), precond.c_str());

  // The RHS block every run draws its columns from (column 0 == the
  // ones-RHS), so batched and independent runs solve identical systems.
  const int kmax = *std::max_element(ks.begin(), ks.end());
  const sparse::CsrMatrix a_ref = api::make_matrix(base);
  const std::vector<double> b_all = api::batch_rhs(a_ref, kmax);
  const auto n = static_cast<std::size_t>(a_ref.rows);
  const double nnz_flops = 2.0 * static_cast<double>(a_ref.nnz());

  service::ServiceConfig cfg;
  cfg.label = "bench_block";
  service::SolverService svc(cfg);

  util::Table table({"k", "mode", "seconds", "s/RHS", "SpMV GFLOP/s",
                     "iters/RHS", "cache"});
  bool ok = true;
  double per_rhs_k1 = 0.0, per_rhs_k4 = 0.0;
  std::uint64_t jobs_submitted = 0;
  std::vector<double> plain_solution;  // rhs=1 plain solve of column 0

  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    const int k = ks[ki];

    // ---- batched: one rhs=k job over columns [0, k) -------------------
    api::SolverOptions opts = base;
    opts.rhs = k;
    std::vector<double> bk(b_all.begin(),
                           b_all.begin() + static_cast<std::ptrdiff_t>(n) * k);
    util::WallTimer batch_timer;
    const service::JobResult batch = svc.wait(svc.submit(opts, bk));
    const double batch_seconds = batch_timer.seconds();
    ++jobs_submitted;

    if (!batch.error.empty()) {
      std::printf("!! k=%d batch failed: %s\n", k, batch.error.c_str());
      return 1;
    }
    const auto& rep = batch.report;
    if (k > 1 &&
        rep.result.rhs_results.size() != static_cast<std::size_t>(k)) {
      std::printf("!! k=%d: expected %d per-RHS results, got %zu\n", k, k,
                  rep.result.rhs_results.size());
      ok = false;
    }
    if (rep.json().find(api::kSolveReportSchema) == std::string::npos) {
      std::printf("!! k=%d: report does not carry schema %s\n", k,
                  api::kSolveReportSchema);
      ok = false;
    }
    if (ki > 0 && !rep.service.cache_hit) {
      std::printf("!! k=%d: batch missed the operator cache\n", k);
      ok = false;
    }

    const double batch_per_rhs = batch_seconds / k;
    const double batch_gflops =
        batch_seconds > 0.0
            ? nnz_flops * static_cast<double>(rep.result.iters) /
                  batch_seconds * 1e-9
            : 0.0;
    table.row()
        .add(k)
        .add("batch")
        .add(batch_seconds, 4)
        .add(batch_per_rhs, 4)
        .add(batch_gflops, 2)
        .add(static_cast<double>(rep.result.iters) / k, 1)
        .add(rep.service.cache_hit ? "hit" : "miss");
    if (k == 1) per_rhs_k1 = batch_per_rhs;
    if (k == 4) per_rhs_k4 = batch_per_rhs;

    // ---- independent: k single-RHS jobs over the same columns ---------
    api::SolverOptions sopts = base;
    sopts.rhs = 1;
    util::WallTimer indep_timer;
    std::vector<std::uint64_t> ids;
    for (int t = 0; t < k; ++t) {
      std::vector<double> bt(
          b_all.begin() + static_cast<std::ptrdiff_t>(n) * t,
          b_all.begin() + static_cast<std::ptrdiff_t>(n) * (t + 1));
      ids.push_back(svc.submit(sopts, std::move(bt)));
    }
    long indep_iters = 0;
    std::vector<service::JobResult> singles;
    for (const std::uint64_t id : ids) singles.push_back(svc.wait(id));
    const double indep_seconds = indep_timer.seconds();
    jobs_submitted += static_cast<std::uint64_t>(k);
    for (const service::JobResult& r : singles) {
      if (!r.error.empty()) {
        std::printf("!! k=%d independent solve failed: %s\n", k,
                    r.error.c_str());
        return 1;
      }
      indep_iters += r.report.result.iters;
    }
    if (plain_solution.empty()) plain_solution = singles.front().solution;

    // Delegation pin: the k=1 batch must be bitwise the plain solve.
    if (k == 1 && batch.solution != plain_solution) {
      std::printf("!! k=1 batch solution differs from the plain single-RHS "
                  "solve (bitwise)\n");
      ok = false;
    }

    const double indep_gflops =
        indep_seconds > 0.0 ? nnz_flops * static_cast<double>(indep_iters) /
                                  indep_seconds * 1e-9
                            : 0.0;
    table.row()
        .add(k)
        .add("k solves")
        .add(indep_seconds, 4)
        .add(indep_seconds / k, 4)
        .add(indep_gflops, 2)
        .add(static_cast<double>(indep_iters) / k, 1)
        .add("-");
    if (ki + 1 < ks.size()) table.separator();
  }
  table.print();

  // One acquisition per job: the only miss is the very first job.
  const service::OperatorCache::Stats stats = svc.cache_stats();
  std::printf(
      "\n# operator cache: %llu hits, %llu misses (%llu jobs — one "
      "acquisition per batch, not per RHS)\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(jobs_submitted));
  if (stats.misses != 1 || stats.hits != jobs_submitted - 1) {
    std::printf("!! expected exactly one miss and one acquisition per job\n");
    ok = false;
  }

  if (per_rhs_k1 > 0.0 && per_rhs_k4 > 0.0) {
    std::printf("# per-RHS time: k=1 %.4fs -> k=4 %.4fs (%.2fx)\n",
                per_rhs_k1, per_rhs_k4, per_rhs_k1 / per_rhs_k4);
    if (!(per_rhs_k4 < per_rhs_k1)) {
      std::printf("!! batching gained nothing: k=4 per-RHS time is not "
                  "below k=1\n");
      ok = false;
    }
  }

  if (svc.log().save(json_path)) {
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
