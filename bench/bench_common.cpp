#include "bench_common.hpp"

#include "precond/gauss_seidel.hpp"

#include <memory>
#include <mutex>

namespace tsbo::bench {

krylov::SolveResult run_distributed(const sparse::CsrMatrix& a,
                                    const std::vector<double>& b,
                                    const RunSpec& spec) {
  krylov::SolveResult out;
  std::mutex merge_mutex;
  util::PhaseTimers merged;

  par::spmd_run(spec.ranks, spec.model, [&](par::Communicator& comm) {
    const sparse::RowPartition part(a.rows, comm.size());
    const sparse::DistCsr dist(a, part, comm.rank());
    const auto begin = static_cast<std::size_t>(part.begin(comm.rank()));
    const auto nloc = static_cast<std::size_t>(dist.n_local());
    std::vector<double> x(nloc, 0.0);
    std::span<const double> b_local(b.data() + begin, nloc);

    std::unique_ptr<precond::Preconditioner> prec;
    if (spec.gauss_seidel) {
      prec = std::make_unique<precond::MulticolorGaussSeidel>(dist);
    }

    krylov::SolveResult res;
    if (spec.scheme < 0) {
      krylov::GmresConfig cfg;
      cfg.m = spec.m;
      cfg.rtol = spec.rtol;
      cfg.max_restarts = spec.max_restarts;
      res = krylov::gmres(comm, dist, prec.get(), b_local, x, cfg);
    } else {
      krylov::SStepGmresConfig cfg;
      cfg.m = spec.m;
      cfg.s = spec.s;
      cfg.bs = spec.bs;
      cfg.scheme = static_cast<krylov::OrthoScheme>(spec.scheme);
      cfg.rtol = spec.rtol;
      cfg.max_restarts = spec.max_restarts;
      res = krylov::sstep_gmres(comm, dist, prec.get(), b_local, x, cfg);
    }

    std::lock_guard lock(merge_mutex);
    merged.merge_max(res.timers);
    if (comm.rank() == 0) out = res;
  });

  out.timers = merged;
  return out;
}

OrthoBreakdown breakdown_of(const krylov::SolveResult& r) {
  OrthoBreakdown b;
  b.dot = r.timers.seconds("ortho/dot");
  b.reduce = r.timers.seconds("ortho/reduce");
  b.update = r.timers.seconds("ortho/update");
  b.factor = r.timers.seconds("ortho/chol") + r.timers.seconds("ortho/trsm") +
             r.timers.seconds("ortho/hhqr");
  b.small = r.timers.seconds("ortho/small");
  return b;
}

}  // namespace tsbo::bench
