// Reproduces paper Fig. 8: per-step condition numbers and orthogonality
// errors of the two-stage approach on the growing glued matrix with
// (n, m, bs, s) = (100000, 180, 60, 5) — panel kappa 1e7 fixed,
// cumulative kappa growing as 2^{j-1} * 1e7.
//
// Expected shape: the accumulated condition number of the *raw* panels
// tracks the construction's 2^{j-1} * 1e7 schedule; the pre-processing
// stage keeps kappa([Q_final, Qhat_big]) = O(1); the orthogonality
// error after every stage-2 flush (every bs columns) is O(eps).
//
// Default n is reduced to keep the kappa measurements (O(n k^2) each)
// inside a few seconds; pass --n=100000 for the paper's size.
//
// A second section runs the solver-level stability-autopilot ablation
// on the ill-conditioned Ga41As41H72 surrogate: the fixed
// (s=15, double-precision Gram, breakdown=throw) configuration aborts
// with CholeskyBreakdown, the same problem with autopilot=1 completes
// the solve (shrinking s / escalating the Gram / re-basing as the
// conditioning monitor demands).  --json dumps the autopilot run's
// SolveReport (schema tsbo.solve_report/7) for the CI gate.
//
//   bench_fig08 [--n=20000] [--m=180] [--bs=60] [--s=5]
//               [--json=fig08.json]

#include "bench_common.hpp"

#include "par/config.hpp"
#include "dense/svd.hpp"
#include "ortho/manager.hpp"
#include "ortho/measures.hpp"
#include "synth/synthetic.hpp"

#include <cmath>
#include <cstdio>

namespace {

/// Fixed-config vs autopilot runs on the Ga41As41H72 surrogate; returns
/// false when the autopilot run fails to complete (the CI gate's
/// failure condition).
bool run_autopilot_ablation(tsbo::api::ReportLog& log) {
  using namespace tsbo;
  // The aggressive configuration: s = 15 monomial steps overruns the
  // eps^{-1/2} panel bound on this surrogate, and breakdown=throw turns
  // the first failed Cholesky into an abort.
  api::SolverOptions fixed = api::SolverOptions::parse(
      "solver=sstep ortho=two_stage matrix=Ga41As41H72 n=800 equilibrate=1 "
      "m=60 s=15 bs=60 rtol=1e-8 breakdown=throw max_restarts=40");

  std::printf(
      "\n# Stability-autopilot ablation: Ga41As41H72 surrogate (n=800, "
      "m=60, s=15, bs=60, rtol=1e-8)\n"
      "# expected: fixed config aborts with CholeskyBreakdown; "
      "autopilot=1 completes the solve\n\n");

  util::Table table({"config", "outcome", "relres", "restarts", "final s",
                     "final gram", "rebases", "events"});

  {
    api::Solver solver(fixed);
    try {
      const api::SolveReport rep = solver.solve();
      table.row()
          .add("fixed s=15 throw")
          .add(rep.result.converged ? "converged" : "stalled")
          .add(util::sci(rep.result.relres))
          .add(rep.result.restarts)
          .add(static_cast<int>(fixed.s))
          .add("double")
          .add(0)
          .add(0);
    } catch (const ortho::CholeskyBreakdown&) {
      table.row()
          .add("fixed s=15 throw")
          .add("ABORTED (CholeskyBreakdown)")
          .add("-")
          .add("-")
          .add("-")
          .add("-")
          .add("-")
          .add("-");
    }
  }

  bool ok = false;
  {
    api::SolverOptions ap = fixed;
    ap.autopilot = true;
    api::Solver solver(ap);
    try {
      const api::SolveReport rep = solver.solve();
      ok = rep.result.converged;
      table.row()
          .add("autopilot=1")
          .add(rep.result.converged ? "converged" : "stalled")
          .add(util::sci(rep.result.relres))
          .add(rep.result.restarts)
          .add(static_cast<int>(rep.result.autopilot_final_s))
          .add(rep.result.autopilot_final_dd ? "dd" : "double")
          .add(rep.result.rebase_recoveries)
          .add(static_cast<int>(rep.result.autopilot_events.size()));
      log.add(rep);
      for (const krylov::AutopilotEvent& ev : rep.result.autopilot_events) {
        std::printf("#   restart %2d: %-13s kappa-est %.2e  s %d -> %d  "
                    "gram %s -> %s\n",
                    ev.restart, ev.kind.c_str(), ev.kappa,
                    static_cast<int>(ev.s_before),
                    static_cast<int>(ev.s_after), ev.dd_before ? "dd" : "d",
                    ev.dd_after ? "dd" : "d");
      }
    } catch (const ortho::CholeskyBreakdown&) {
      table.row()
          .add("autopilot=1")
          .add("ABORTED (CholeskyBreakdown)")
          .add("-")
          .add("-")
          .add("-")
          .add("-")
          .add("-")
          .add("-");
    }
  }
  table.print();
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsbo;
  using dense::index_t;
  using dense::Matrix;

  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const auto n = static_cast<index_t>(cli.get_int("n", 20000));
  const auto m = static_cast<index_t>(cli.get_int("m", 180));
  const auto bs = static_cast<index_t>(cli.get_int("bs", 60));
  const auto s = static_cast<index_t>(cli.get_int("s", 5));
  const std::string json_path = cli.get("json", "");
  cli.reject_unknown();

  std::printf(
      "# Fig. 8 reproduction: two-stage on glued matrix (n,m,bs,s) = "
      "(%d,%d,%d,%d)\n"
      "# panel kappa = 1e7, cumulative kappa = 2^(j-1) * 1e7\n"
      "# expected: kappa(panels) tracks the 2^(j-1)*1e7 schedule;\n"
      "#           kappa([Q,Qhat]) stays O(1); err = O(eps) at each "
      "flush\n\n",
      n, m, bs, s);

  synth::GluedSpec spec;
  spec.n = n;
  spec.panels = m / s;
  spec.panel_cols = s;
  spec.kappa_panel = 1e7;
  spec.growth = 2.0;
  const Matrix vpanels = synth::glued(spec, 7);

  // Seed column + panels, driven through the two-stage manager exactly
  // like the solver drives it.
  Matrix basis(n, m + 1);
  {
    const Matrix seed = synth::random_orthonormal(n, 1, 12345);
    dense::copy(seed.view(), basis.view().columns(0, 1));
    dense::copy(vpanels.view(), basis.view().columns(1, m));
  }
  Matrix r(m + 1, m + 1), l(m + 1, m + 1);
  r(0, 0) = 1.0;

  auto mgr = ortho::make_two_stage_manager(bs);
  mgr->reset();
  ortho::OrthoContext ctx;
  ctx.policy = ortho::BreakdownPolicy::kShift;

  util::Table table({"step", "kappa(V_1:j) raw", "monitor est",
                     "kappa([Q,Qhat_1:j])", "||I-Q^T Q|| (at flush)"});

  for (index_t p = 0; p < m / s; ++p) {
    const index_t q0 = p * s + 1;
    // Raw cumulative condition number (the 2^{j-1} * 1e7 schedule).
    const double kraw = dense::cond_2(vpanels.view().columns(0, q0 - 1 + s));

    mgr->note_mpk_start(ctx, l.view(), p * s);
    const index_t nfinal =
        mgr->add_panel(ctx, basis.view(), q0, s, r.view(), l.view());

    // The autopilot's free conditioning estimate — the squared diagonal
    // ratio of the panel's Gram Cholesky factor — next to the exact
    // (O(n k^2) SVD) values it stands in for.
    const double monitor = std::sqrt(ctx.take_gram_kappa_peak());
    const double kpre = dense::cond_2(basis.view().columns(0, q0 + s));
    table.row()
        .add(static_cast<int>(p * s + s))
        .add(util::sci(kraw))
        .add(util::sci(monitor))
        .add(util::sci(kpre));
    if (nfinal == q0 + s) {  // stage-2 flush happened at this panel
      const double err =
          dense::orthogonality_error(basis.view().columns(0, nfinal));
      table.add(util::sci(err));
    } else {
      table.add("-");
    }
  }
  table.print();

  std::printf("\nshift retries: %d, breakdowns: %d\n", ctx.shift_retries,
              ctx.cholesky_breakdowns);

  api::ReportLog log("fig08");
  const bool ap_ok = run_autopilot_ablation(log);
  if (log.save(json_path)) std::printf("\n# wrote %s\n", json_path.c_str());
  if (!ap_ok) {
    std::printf("\n# FAIL: autopilot run did not complete\n");
    return 1;
  }
  return 0;
}
