// Reproduces paper Fig. 8: per-step condition numbers and orthogonality
// errors of the two-stage approach on the growing glued matrix with
// (n, m, bs, s) = (100000, 180, 60, 5) — panel kappa 1e7 fixed,
// cumulative kappa growing as 2^{j-1} * 1e7.
//
// Expected shape: the accumulated condition number of the *raw* panels
// tracks the construction's 2^{j-1} * 1e7 schedule; the pre-processing
// stage keeps kappa([Q_final, Qhat_big]) = O(1); the orthogonality
// error after every stage-2 flush (every bs columns) is O(eps).
//
// Default n is reduced to keep the kappa measurements (O(n k^2) each)
// inside a few seconds; pass --n=100000 for the paper's size.
//
//   bench_fig08 [--n=20000] [--m=180] [--bs=60] [--s=5]

#include "bench_common.hpp"

#include "par/config.hpp"
#include "dense/svd.hpp"
#include "ortho/manager.hpp"
#include "ortho/measures.hpp"
#include "synth/synthetic.hpp"

#include <cmath>
#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  using dense::index_t;
  using dense::Matrix;

  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const auto n = static_cast<index_t>(cli.get_int("n", 20000));
  const auto m = static_cast<index_t>(cli.get_int("m", 180));
  const auto bs = static_cast<index_t>(cli.get_int("bs", 60));
  const auto s = static_cast<index_t>(cli.get_int("s", 5));
  cli.reject_unknown();

  std::printf(
      "# Fig. 8 reproduction: two-stage on glued matrix (n,m,bs,s) = "
      "(%d,%d,%d,%d)\n"
      "# panel kappa = 1e7, cumulative kappa = 2^(j-1) * 1e7\n"
      "# expected: kappa(panels) tracks the 2^(j-1)*1e7 schedule;\n"
      "#           kappa([Q,Qhat]) stays O(1); err = O(eps) at each "
      "flush\n\n",
      n, m, bs, s);

  synth::GluedSpec spec;
  spec.n = n;
  spec.panels = m / s;
  spec.panel_cols = s;
  spec.kappa_panel = 1e7;
  spec.growth = 2.0;
  const Matrix vpanels = synth::glued(spec, 7);

  // Seed column + panels, driven through the two-stage manager exactly
  // like the solver drives it.
  Matrix basis(n, m + 1);
  {
    const Matrix seed = synth::random_orthonormal(n, 1, 12345);
    dense::copy(seed.view(), basis.view().columns(0, 1));
    dense::copy(vpanels.view(), basis.view().columns(1, m));
  }
  Matrix r(m + 1, m + 1), l(m + 1, m + 1);
  r(0, 0) = 1.0;

  auto mgr = ortho::make_two_stage_manager(bs);
  mgr->reset();
  ortho::OrthoContext ctx;
  ctx.policy = ortho::BreakdownPolicy::kShift;

  util::Table table({"step", "kappa(V_1:j) raw", "kappa([Q,Qhat_1:j])",
                     "||I-Q^T Q|| (at flush)"});

  for (index_t p = 0; p < m / s; ++p) {
    const index_t q0 = p * s + 1;
    // Raw cumulative condition number (the 2^{j-1} * 1e7 schedule).
    const double kraw = dense::cond_2(vpanels.view().columns(0, q0 - 1 + s));

    mgr->note_mpk_start(ctx, l.view(), p * s);
    const index_t nfinal =
        mgr->add_panel(ctx, basis.view(), q0, s, r.view(), l.view());

    const double kpre = dense::cond_2(basis.view().columns(0, q0 + s));
    table.row()
        .add(static_cast<int>(p * s + s))
        .add(util::sci(kraw))
        .add(util::sci(kpre));
    if (nfinal == q0 + s) {  // stage-2 flush happened at this panel
      const double err =
          dense::orthogonality_error(basis.view().columns(0, nfinal));
      table.add(util::sci(err));
    } else {
      table.add("-");
    }
  }
  table.print();

  std::printf("\nshift retries: %d, breakdowns: %d\n", ctx.shift_retries,
              ctx.cholesky_breakdowns);
  return 0;
}
