// Ablation studies for the design choices DESIGN.md calls out —
// extensions the paper discusses but does not evaluate:
//
//  A. Basis polynomial x step size: the paper uses the monomial basis
//     and argues a conservative s = 5 is forced by MPK conditioning;
//     Newton/Chebyshev bases (paper ref [1]) extend the stable range.
//     We sweep s with each basis and report breakdowns/orthogonality.
//  B. Mixed-precision (double-double) Gram accumulation (paper refs
//     [26], [27]): extends the stable kappa range of CholQR-family
//     algorithms at a local-compute premium, without extra
//     communication.
//  C. Breakdown policy: throw vs shifted retry (Fukaya et al. [11])
//     when condition (5)/(9) is deliberately violated.
//
//   bench_ablation [--nx=96] [--ranks=4] [--json=ablation.json]

#include "bench_common.hpp"

#include "dense/svd.hpp"
#include "ortho/intra.hpp"
#include "ortho/randomized.hpp"
#include "par/config.hpp"
#include "synth/synthetic.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace {

using namespace tsbo;
using namespace tsbo::bench;

void ablation_basis_times_s(const api::SolverOptions& base,
                            api::ReportLog& log) {
  const sparse::CsrMatrix a = api::make_matrix(base);
  const std::vector<double> b = api::ones_rhs(a);

  std::printf(
      "## Ablation A: basis polynomial x step size (two-stage, bs = m, "
      "2-D Laplace n=%dx%d, run to rtol 1e-6)\n"
      "## expected: monomial degrades as s grows (shift retries, extra "
      "iterations); Newton/Chebyshev stay clean\n\n",
      base.nx, base.nx);

  util::Table table({"basis", "s", "iters", "converged", "true relres",
                     "breakdowns", "shift retries"});
  for (const char* basis : {"monomial", "newton", "chebyshev"}) {
    for (const int s : {5, 10, 20}) {
      api::SolverOptions opts = api::SolverOptions::parse(
          // 5-pt Laplace spectrum for the Newton/Chebyshev interval.
          "solver=sstep ortho=two_stage bs=60 lambda_min=0.01 lambda_max=8 "
          "rtol=1e-6 max_restarts=200",
          base);
      opts.basis = basis;
      opts.s = s;
      api::Solver solver(opts);
      solver.set_matrix_ref(a, base.matrix);
      solver.set_rhs(b);
      const api::SolveReport rep = solver.solve();
      table.row()
          .add(basis)
          .add(s)
          .add(rep.result.iters)
          .add(rep.result.converged ? "yes" : "no")
          .add(util::sci(rep.result.true_relres))
          .add(rep.result.cholesky_breakdowns)
          .add(rep.result.shift_retries);
      log.add(rep);
    }
  }
  table.print();
}

void ablation_mixed_precision() {
  std::printf(
      "\n## Ablation B: double-double Gram accumulation in CholQR2 "
      "(shift-retry policy, 5 seeds, worst case reported)\n"
      "## expected: the dd Gram + dd Cholesky path needs no shifted "
      "retries anywhere in this sweep (its cliff sits at kappa ~ 1e15) "
      "and reaches O(eps) orthogonality at every kappa, at ~5-10x local "
      "Gram cost; the plain path starts shifting near the eps^-1/2 "
      "cliff ~ 6.7e7\n\n");

  util::Table table({"kappa", "plain max err", "plain retries",
                     "plain time ms", "dd max err", "dd retries",
                     "dd time ms"});
  const dense::index_t n = 50000, s = 5;
  for (const double kappa : {1e4, 1e7, 5e7, 1e8, 1e11}) {
    table.row().add(util::sci(kappa, 0));
    for (const bool dd : {false, true}) {
      double max_err = 0.0, ms = 0.0;
      int retries = 0;
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        dense::Matrix v = synth::logscaled(n, s, kappa, seed);
        dense::Matrix r(s, s);
        ortho::OrthoContext ctx;
        ctx.mixed_precision_gram = dd;
        ctx.policy = ortho::BreakdownPolicy::kShift;
        util::WallTimer t;
        ortho::cholqr2(ctx, v.view(), r.view());
        ms += 1e3 * t.seconds();
        max_err = std::max(max_err, dense::orthogonality_error(v.view()));
        retries += ctx.shift_retries;
      }
      table.add(util::sci(max_err)).add(retries).add(ms / 5.0, 2);
    }
  }
  table.print();
}

void ablation_breakdown_policy() {
  std::printf(
      "\n## Ablation C: breakdown policy on condition-(5)-violating "
      "panels (kappa = 1e12 logscaled, 10 seeds)\n"
      "## expected: kThrow raises CholeskyBreakdown on the seeds whose "
      "Gram pivots go non-positive; kShift completes every seed\n\n");
  util::Table table({"policy", "completed", "exceptions", "shift retries",
                     "worst err (completed)"});
  for (const auto policy :
       {ortho::BreakdownPolicy::kThrow, ortho::BreakdownPolicy::kShift}) {
    int completed = 0, exceptions = 0, retries = 0;
    double worst = 0.0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      dense::Matrix v = synth::logscaled(30000, 5, 1e12, seed);
      dense::Matrix r(5, 5);
      ortho::OrthoContext ctx;
      ctx.policy = policy;
      try {
        ortho::cholqr2(ctx, v.view(), r.view());
        ++completed;
        retries += ctx.shift_retries;
        worst = std::max(worst, dense::orthogonality_error(v.view()));
      } catch (const ortho::CholeskyBreakdown&) {
        ++exceptions;
      }
    }
    table.row()
        .add(policy == ortho::BreakdownPolicy::kThrow ? "throw" : "shift")
        .add(completed)
        .add(exceptions)
        .add(retries)
        .add(completed ? util::sci(worst) : "-");
  }
  table.print();
}

void ablation_randomized() {
  std::printf(
      "\n## Ablation D: randomized (sketched) CholQR — the paper's "
      "Section IX future-work direction [3]\n"
      "## expected: stable O(eps) orthogonality far past CholQR2's "
      "eps^-1/2 cliff, with 2 reduces (vs shifted CholQR3's 3)\n\n");
  util::Table table({"kappa", "CholQR2", "sCholQR3", "randomized",
                     "rand time ms"});
  const dense::index_t n = 50000, s = 5;
  for (const double kappa : {1e4, 1e8, 1e10, 1e13}) {
    table.row().add(util::sci(kappa, 0));
    const dense::Matrix v0 = synth::logscaled(n, s, kappa, 5);
    auto try_algo = [&](auto&& fn) -> std::string {
      dense::Matrix v = dense::copy_of(v0.view());
      dense::Matrix r(s, s);
      ortho::OrthoContext ctx;
      ctx.policy = ortho::BreakdownPolicy::kThrow;
      try {
        fn(ctx, v.view(), r.view());
        return util::sci(dense::orthogonality_error(v.view()));
      } catch (const ortho::CholeskyBreakdown&) {
        return "breakdown";
      }
    };
    table.add(try_algo([](ortho::OrthoContext& c, dense::MatrixView v,
                          dense::MatrixView r) { ortho::cholqr2(c, v, r); }));
    table.add(try_algo([](ortho::OrthoContext& c, dense::MatrixView v,
                          dense::MatrixView r) {
      ortho::shifted_cholqr3(c, v, r);
    }));
    util::WallTimer t;
    table.add(try_algo([](ortho::OrthoContext& c, dense::MatrixView v,
                          dense::MatrixView r) {
      ortho::randomized_cholqr(c, v, r, 0);
    }));
    table.add(1e3 * t.seconds(), 2);
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS

  api::SolverOptions base =
      api::SolverOptions::parse("matrix=laplace2d_5pt");
  base.nx = cli.get_int("nx", 96);
  base.ranks = cli.get_int("ranks", 4);
  const std::string json_path = cli.get("json", "");
  cli.reject_unknown();

  std::printf("# Ablations: paper-discussed extensions (not in its tables)\n\n");
  api::ReportLog log("ablation");
  ablation_basis_times_s(base, log);
  ablation_mixed_precision();
  ablation_breakdown_policy();
  ablation_randomized();
  if (log.save(json_path)) std::printf("\n# wrote %s\n", json_path.c_str());
  return 0;
}
