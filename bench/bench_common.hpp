#pragma once
// Shared shaping for the paper-reproduction harnesses.
//
// Every run is described by an api::SolverOptions spec and executed by
// the api::Solver facade; what remains here is pure table shaping: the
// solver columns the paper's tables sweep, expressed as option specs.
// Each harness prints (a) the experiment's provenance (which
// table/figure of the paper it regenerates, at what scale), (b) a
// paper-shaped table of measured values, and accepts --json=<path> to
// dump the underlying SolveReports (api::ReportLog).

#include "api/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace tsbo::bench {

struct Algo {
  const char* label;  ///< table row label
  const char* spec;   ///< SolverOptions::parse() overlay
};

/// The four solver columns of Tables II-IV / Fig. 13, in paper order.
inline constexpr Algo kPaperAlgos[] = {
    {"GMRES+CGS2", "solver=gmres ortho=cgs2"},
    {"s-step BCGS2", "solver=sstep ortho=bcgs2"},
    {"s-step PIP2", "solver=sstep ortho=bcgs_pip2"},
    {"two-stage bs=m", "solver=sstep ortho=two_stage"},
};

}  // namespace tsbo::bench
