#pragma once
// Shared machinery for the paper-reproduction harnesses.
//
// Every bench binary prints (a) the experiment's provenance (which
// table/figure of the paper it regenerates, at what scale), (b) a
// paper-shaped table of measured values.  Absolute numbers are
// machine-specific; EXPERIMENTS.md records the expected *shape*.

#include "krylov/gmres.hpp"
#include "krylov/sstep_gmres.hpp"
#include "par/config.hpp"
#include "par/spmd.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/spmv.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace tsbo::bench {

inline par::NetworkModel model_from_cli(const util::Cli& cli) {
  const std::string net = cli.get("net", "calibrated");
  if (net == "off") return par::NetworkModel::off();
  if (net == "ethernet") return par::NetworkModel::ethernet();
  if (net == "hw") return par::NetworkModel::cluster();
  return par::NetworkModel::calibrated();
}

/// RHS such that the solution is the all-ones vector (paper Section
/// VIII).
inline std::vector<double> ones_rhs(const sparse::CsrMatrix& a) {
  std::vector<double> x(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  sparse::spmv(a, x, b);
  return b;
}

struct RunSpec {
  int ranks = 4;
  par::NetworkModel model = par::NetworkModel::calibrated();
  /// negative scheme: run standard GMRES + CGS2 instead of s-step.
  int scheme = -1;  // cast of krylov::OrthoScheme when >= 0
  dense::index_t m = 60;
  dense::index_t s = 5;
  dense::index_t bs = 60;
  double rtol = 0.0;     // 0: run the full iteration budget
  int max_restarts = 4;  // fixed budget => identical work across schemes
  bool gauss_seidel = false;
};

/// Runs one solver configuration on the (replicated) matrix under the
/// SPMD runtime and returns rank 0's result.  The per-phase timers of
/// all ranks are max-merged (critical-path convention).
krylov::SolveResult run_distributed(const sparse::CsrMatrix& a,
                                    const std::vector<double>& b,
                                    const RunSpec& spec);

/// Sums the ortho-phase buckets the paper's breakdown figures plot.
struct OrthoBreakdown {
  double dot = 0.0;      // local block dot products
  double reduce = 0.0;   // global all-reduces (incl. modeled latency)
  double update = 0.0;   // vector updates (GEMM)
  double factor = 0.0;   // Cholesky + TRSM (+ HHQR)
  double small = 0.0;    // Hessenberg/Givens bookkeeping
  [[nodiscard]] double total() const {
    return dot + reduce + update + factor + small;
  }
};
OrthoBreakdown breakdown_of(const krylov::SolveResult& r);

}  // namespace tsbo::bench
