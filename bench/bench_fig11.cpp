// Reproduces paper Fig. 11: orthogonalization time breakdown of
// BCGS-PIP2 vs rank count (see bench_fig10.cpp for the shared driver
// and the expected shape; PIP2 cuts the reduce count from 5 to 2 per
// panel, so its reduce share is visibly smaller than Fig. 10's).

#define TSBO_BREAKDOWN_NO_MAIN
#include "bench_fig10.cpp"
#undef TSBO_BREAKDOWN_NO_MAIN

int main(int argc, char** argv) {
  using namespace tsbo;
  return bench::run_breakdown_figure(argc, argv, "Fig. 11",
                                     "solver=sstep ortho=bcgs_pip2",
                                     "BCGS-PIP2");
}
