// Reproduces paper Table III: strong scaling of the four solvers on the
// 9-pt 2-D Laplace problem.
//
// Paper: n = 2000^2, 1..32 Summit nodes x 6 GPUs (up to 192 ranks),
// run to convergence.  Here: shrunk grid, rank counts the host can run
// un-oversubscribed, cluster network model, fixed restart budget.
// Expected shape (per rank count):
//   Ortho(GMRES+CGS2) > Ortho(BCGS2+CholQR2) > Ortho(BCGS-PIP2)
//                     > Ortho(two-stage, bs=m),
// with the s-step-over-GMRES and two-stage-over-GMRES speedup factors
// *growing* with the rank count (communication-bound regime).
//
//   bench_table03 [--nx=512] [--ranks=1,2,4,8,16] [--restarts=2]
//                 [--net=cluster] [--pipeline_depth=1]
//                 [--json=table03.json]
//
// --pipeline_depth=1 enables overlap credit for the pipelined s-step
// runtime (bitwise-identical solutions; see bench_fig10.cpp).

#include "bench_common.hpp"

#include "par/config.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  using namespace tsbo::bench;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nx = cli.get_int("nx", 192);
  const std::vector<int> rank_list =
      cli.get_int_list("ranks", {1, 2, 4, 8, 16});
  const int restarts = cli.get_int("restarts", 2);
  const std::string json_path = cli.get("json", "");

  api::SolverOptions base =
      api::SolverOptions::parse("matrix=laplace2d_9pt rtol=0");
  base.nx = nx;
  base.net = cli.get("net", "calibrated");
  base.max_restarts = restarts;
  base.pipeline_depth = cli.get_int("pipeline_depth", 0);
  cli.reject_unknown();

  const sparse::CsrMatrix a = api::make_matrix(base);
  const std::vector<double> b = api::ones_rhs(a);

  std::printf(
      "# Table III reproduction: strong scaling, 2-D Laplace 9-pt "
      "n=%dx%d, %d restarts (%ld iters), net model injects fabric "
      "latency\n"
      "# expected shape: ortho ordering CGS2 > BCGS2 > PIP2 > two-stage;"
      " speedups over GMRES grow with ranks\n\n",
      nx, nx, restarts, 60L * restarts);

  util::Table table({"ranks", "solver", "SpMV", "Ortho", "Total",
                     "ortho speedup", "total speedup", "allreduces",
                     "comm exp s", "comm ovl s", "lkh hit", "lkh miss"});
  api::ReportLog log("table03");

  for (const int p : rank_list) {
    double base_ortho = 0.0, base_total = 0.0;
    for (const Algo& algo : kPaperAlgos) {
      api::SolverOptions opts = api::SolverOptions::parse(algo.spec, base);
      opts.ranks = p;
      api::Solver solver(opts);
      solver.set_matrix_ref(a, base.matrix);
      solver.set_rhs(b);
      const api::SolveReport rep = solver.solve();
      const krylov::SolveResult& r = rep.result;
      if (!opts.is_sstep()) {
        base_ortho = r.time_ortho();
        base_total = r.time_total();
      }
      table.row()
          .add(p)
          .add(algo.label)
          .add(r.time_spmv(), 3)
          .add(r.time_ortho(), 3)
          .add(r.time_total(), 3)
          .add(util::speedup_str(base_ortho, r.time_ortho()))
          .add(util::speedup_str(base_total, r.time_total()))
          .add(static_cast<long>(r.comm_stats.allreduces))
          .add(r.comm_stats.injected_seconds, 3)
          .add(r.comm_stats.overlapped_seconds, 3)
          .add(r.lookahead_hits)
          .add(r.lookahead_misses);
      log.add(rep);
    }
    table.separator();
  }
  table.print();
  if (log.save(json_path)) std::printf("\n# wrote %s\n", json_path.c_str());
  return 0;
}
