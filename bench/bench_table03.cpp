// Reproduces paper Table III: strong scaling of the four solvers on the
// 9-pt 2-D Laplace problem.
//
// Paper: n = 2000^2, 1..32 Summit nodes x 6 GPUs (up to 192 ranks),
// run to convergence.  Here: shrunk grid, rank counts the host can run
// un-oversubscribed, cluster network model, fixed restart budget.
// Expected shape (per rank count):
//   Ortho(GMRES+CGS2) > Ortho(BCGS2+CholQR2) > Ortho(BCGS-PIP2)
//                     > Ortho(two-stage, bs=m),
// with the s-step-over-GMRES and two-stage-over-GMRES speedup factors
// *growing* with the rank count (communication-bound regime).
//
//   bench_table03 [--nx=512] [--ranks=1,2,4,8,16] [--restarts=2] [--net=cluster]

#include "bench_common.hpp"

#include "sparse/generators.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace tsbo;
  using namespace tsbo::bench;
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);  // --threads=N / TSBO_NUM_THREADS
  const int nx = cli.get_int("nx", 192);
  const std::vector<int> rank_list =
      cli.get_int_list("ranks", {1, 2, 4, 8, 16});
  const int restarts = cli.get_int("restarts", 2);

  const auto a = sparse::laplace2d_9pt(nx, nx);
  const auto b = ones_rhs(a);

  std::printf(
      "# Table III reproduction: strong scaling, 2-D Laplace 9-pt "
      "n=%dx%d, %d restarts (%ld iters), net model injects fabric "
      "latency\n"
      "# expected shape: ortho ordering CGS2 > BCGS2 > PIP2 > two-stage;"
      " speedups over GMRES grow with ranks\n\n",
      nx, nx, restarts, 60L * restarts);

  struct Algo {
    const char* name;
    int scheme;
  };
  const Algo algos[] = {
      {"GMRES+CGS2", -1},
      {"s-step BCGS2", static_cast<int>(krylov::OrthoScheme::kBcgs2CholQr2)},
      {"s-step PIP2", static_cast<int>(krylov::OrthoScheme::kBcgsPip2)},
      {"two-stage bs=m", static_cast<int>(krylov::OrthoScheme::kTwoStage)},
  };

  util::Table table({"ranks", "solver", "SpMV", "Ortho", "Total",
                     "ortho speedup", "total speedup", "allreduces"});

  for (const int p : rank_list) {
    RunSpec spec;
    spec.ranks = p;
    spec.model = model_from_cli(cli);
    spec.max_restarts = restarts;

    double base_ortho = 0.0, base_total = 0.0;
    for (const Algo& algo : algos) {
      spec.scheme = algo.scheme;
      const auto r = run_distributed(a, b, spec);
      if (algo.scheme == -1) {
        base_ortho = r.time_ortho();
        base_total = r.time_total();
      }
      table.row()
          .add(p)
          .add(algo.name)
          .add(r.time_spmv(), 3)
          .add(r.time_ortho(), 3)
          .add(r.time_total(), 3)
          .add(util::speedup_str(base_ortho, r.time_ortho()))
          .add(util::speedup_str(base_total, r.time_total()))
          .add(static_cast<long>(r.comm_stats.allreduces));
    }
    table.separator();
  }
  table.print();
  return 0;
}
