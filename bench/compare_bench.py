#!/usr/bin/env python3
"""Perf-regression gate over bench_kernels' BENCH_kernels.json.

Compares a fresh run against the committed baseline:

    ./build/bench_kernels --json=fresh_kernels.json
    python3 bench/compare_bench.py BENCH_kernels.json fresh_kernels.json

Checks, in order of severity:

  1. Determinism (hard fail): every fresh row must report
     deterministic=true and matches_serial=true — the kernel layer's
     fixed-chunk-reduction contract, independent of machine speed.
  2. Coverage (hard fail): the two files must share at least one
     (kernel, shape, threads) row; kernels present in the baseline but
     absent from the fresh run are reported (a silently dropped kernel
     is how perf coverage rots).  Thread counts are intersected, since
     runners have different core counts than the baseline machine.
  3. Throughput (tolerance band): for every common row,
     fresh.gflops >= baseline.gflops * (1 - tol).  The default band is
     deliberately wide (--tol=0.5) because CI runners differ from the
     machine that produced the committed baseline; tighten it when
     comparing runs from the same host.  Improvements are reported, not
     gated.

--update rewrites the baseline file with the fresh results (run on the
reference machine after an intentional perf change).

Exit code: 0 clean, 1 on any determinism failure, coverage failure, or
regression beyond the band.
"""

import argparse
import json
import shutil
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", []):
        rows[(r["kernel"], r["shape"], r["threads"])] = r
    return doc, rows


def main():
    ap = argparse.ArgumentParser(
        description="Diff two BENCH_kernels.json files with a tolerance band."
    )
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("fresh", help="freshly generated JSON")
    ap.add_argument(
        "--tol",
        type=float,
        default=0.5,
        help="allowed fractional gflops drop per row (default 0.5: "
        "flag rows slower than half the baseline)",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline with the fresh results and exit",
    )
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated: {args.fresh} -> {args.baseline}")
        return 0

    base_doc, base_rows = load(args.baseline)
    fresh_doc, fresh_rows = load(args.fresh)
    failures = []

    # The kernel layer's compile-time SIMD ISA is part of each record;
    # cross-ISA comparisons (committed avx512 baseline vs an avx2 or
    # scalar runner) are legitimate but land in the tolerance band, so
    # surface the pairing up front.
    base_isa = base_doc.get("simd", "unknown")
    fresh_isa = fresh_doc.get("simd", "unknown")
    if base_isa != fresh_isa:
        print(f"note: comparing across SIMD ISAs: baseline={base_isa} "
              f"fresh={fresh_isa} (tolerance band absorbs the gap)")

    # 1. Determinism is machine-independent: gate every fresh row.
    for key, row in sorted(fresh_rows.items()):
        if not (row.get("deterministic") and row.get("matches_serial")):
            failures.append(f"DETERMINISM {key}: {row}")

    # 2. Coverage.
    common = sorted(set(base_rows) & set(fresh_rows))
    if not common:
        failures.append(
            "COVERAGE: no common (kernel, shape, threads) rows — "
            "did the kernel set or default shapes change?"
        )
    base_kernels = {k for (k, _, _) in base_rows}
    fresh_kernels = {k for (k, _, _) in fresh_rows}
    for missing in sorted(base_kernels - fresh_kernels):
        failures.append(f"COVERAGE: kernel '{missing}' missing from fresh run")

    # 3. Throughput band.  Rows from the split-phase comm runtime may
    # carry overlap fields ("exposed_seconds" / "overlapped_seconds",
    # mirroring the SolveReport /3 comm section); they are surfaced as
    # information but never gated — wall-clock overlap ratios are
    # machine- and load-dependent in a way GFLOP/s is not.
    regressions, improvements = [], []
    for key in common:
        fresh_row = fresh_rows[key]
        if "overlapped_seconds" in fresh_row:
            exp = fresh_row.get("exposed_seconds", 0.0)
            ovl = fresh_row["overlapped_seconds"]
            total = exp + ovl
            share = 100.0 * ovl / total if total > 0 else 0.0
            print(f"  overlap: {key[0]:12s} {key[1]:>14s} t={key[2]:<3d} "
                  f"exposed={exp:.4f}s overlapped={ovl:.4f}s ({share:.0f}% hidden)")
        base_g = base_rows[key].get("gflops", 0.0)
        fresh_g = fresh_row.get("gflops", 0.0)
        if base_g <= 0:
            continue
        ratio = fresh_g / base_g
        line = f"{key[0]:12s} {key[1]:>14s} t={key[2]:<3d} " \
               f"{base_g:8.3f} -> {fresh_g:8.3f} GFLOP/s ({ratio:5.2f}x)"
        if ratio < 1.0 - args.tol:
            regressions.append(line)
        elif ratio > 1.0 + args.tol:
            improvements.append(line)

    print(f"compared {len(common)} rows (tol band ±{args.tol:.0%})")
    for line in improvements:
        print(f"  faster: {line}")
    for line in regressions:
        print(f"  REGRESSION: {line}")
    for f in failures:
        print(f"  {f}")

    if regressions or failures:
        print("FAIL")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
