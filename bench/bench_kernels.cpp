// Supporting micro-kernel benchmarks (google-benchmark).
//
// These quantify the two local-performance effects the paper's
// argument rests on:
//   1. BLAS-3 block inner products reuse the streamed panel: the fused
//      Gram [Q,V]^T V at block size bs = 60 sustains far higher
//      throughput than 60 BLAS-1 dots or s = 5 panels (why the second
//      stage runs at block size bs).
//   2. CholQR's factor+TRSM cost is trivial next to HHQR's
//      reflector-by-reflector sweeps (why BCGS2 uses CholQR2).
// Plus SpMV throughput for context.

#include "dense/blas1.hpp"
#include "dense/blas3.hpp"
#include "ortho/intra.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "synth/synthetic.hpp"
#include "util/random.hpp"

#include <benchmark/benchmark.h>

#include <vector>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Xoshiro256 rng(seed);
  util::fill_normal(rng, m.data());
  return m;
}

/// Block dot product C = A^T B at varying block size: the data-reuse
/// story behind the two-stage second stage.
void BM_BlockDot(benchmark::State& state) {
  const index_t n = 1 << 18;
  const auto cols = static_cast<index_t>(state.range(0));
  const Matrix a = random_matrix(n, cols, 1);
  const Matrix b = random_matrix(n, cols, 2);
  Matrix c(cols, cols);
  for (auto _ : state) {
    dense::gemm_tn(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.col(0));
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long>(n) *
                          cols * cols);
}
BENCHMARK(BM_BlockDot)->Arg(1)->Arg(5)->Arg(20)->Arg(60)->Unit(benchmark::kMillisecond);

/// The same work done as independent BLAS-1 dots (standard GMRES).
void BM_ColumnwiseDots(benchmark::State& state) {
  const index_t n = 1 << 18;
  const auto cols = static_cast<index_t>(state.range(0));
  const Matrix a = random_matrix(n, cols, 3);
  const Matrix b = random_matrix(n, cols, 4);
  std::vector<double> out(static_cast<std::size_t>(cols) * cols);
  for (auto _ : state) {
    for (index_t i = 0; i < cols; ++i) {
      for (index_t j = 0; j < cols; ++j) {
        out[static_cast<std::size_t>(i) * cols + j] = dense::dot(
            std::span<const double>(a.col(i), static_cast<std::size_t>(n)),
            std::span<const double>(b.col(j), static_cast<std::size_t>(n)));
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long>(n) *
                          cols * cols);
}
BENCHMARK(BM_ColumnwiseDots)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

/// Panel update V -= Q R at growing basis width.
void BM_BlockUpdate(benchmark::State& state) {
  const index_t n = 1 << 18;
  const auto q = static_cast<index_t>(state.range(0));
  const Matrix qm = random_matrix(n, q, 5);
  const Matrix r = random_matrix(q, 5, 6);
  Matrix v = random_matrix(n, 5, 7);
  for (auto _ : state) {
    dense::gemm_nn(-1.0, qm.view(), r.view(), 1.0, v.view());
    benchmark::DoNotOptimize(v.col(0));
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long>(n) * q * 5);
}
BENCHMARK(BM_BlockUpdate)->Arg(5)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);

/// CholQR vs HHQR on the same panel (single rank).
void BM_CholQR(benchmark::State& state) {
  const index_t n = 1 << 17;
  const auto s = static_cast<index_t>(state.range(0));
  const Matrix v0 = synth::logscaled(n, s, 100.0, 8);
  for (auto _ : state) {
    Matrix v = dense::copy_of(v0.view());
    Matrix r(s, s);
    ortho::OrthoContext ctx;
    ortho::cholqr(ctx, v.view(), r.view());
    benchmark::DoNotOptimize(v.col(0));
  }
}
BENCHMARK(BM_CholQR)->Arg(5)->Arg(20)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_HHQR(benchmark::State& state) {
  const index_t n = 1 << 17;
  const auto s = static_cast<index_t>(state.range(0));
  const Matrix v0 = synth::logscaled(n, s, 100.0, 9);
  for (auto _ : state) {
    Matrix v = dense::copy_of(v0.view());
    Matrix r(s, s);
    ortho::OrthoContext ctx;
    ortho::hhqr(ctx, v.view(), r.view());
    benchmark::DoNotOptimize(v.col(0));
  }
}
BENCHMARK(BM_HHQR)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_SpMV(benchmark::State& state) {
  const auto nx = static_cast<sparse::ord>(state.range(0));
  const auto a = sparse::laplace2d_9pt(nx, nx);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows));
  for (auto _ : state) {
    sparse::spmv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * a.nnz());
}
BENCHMARK(BM_SpMV)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
