// Kernel-layer throughput harness: serial vs. threaded GFLOP/s for the
// hot kernels of the two-stage orthogonalization path.
//
// Sweeps the thread count over the paper-scale shapes the speedup
// argument rests on:
//   * gemm_tn     — the Gram / block-dot product C = A^T B at m = 1e5
//                   and panel widths s (one-stage) through bs (second
//                   stage);
//   * gemm_tn_dd  — the same product with double-double accumulation
//                   (mixed-precision CholQR Gram).  GFLOP/s counts the
//                   2*m*s^2 *useful* flops, so the gap to gemm_tn is
//                   exactly the software-dd overhead;
//   * gemm_nn     — the panel update V -= Q R at the same shapes;
//   * gemm_tn_wide / gemm_nn_wide — the same products at the flat
//                   panel widths the batched (rhs=k) block solver
//                   produces (bs * k columns, --wide list), where the
//                   kColBlock small-operand tiling in dense/blas3.cpp
//                   earns its keep (at s ~ 10 every width fits cache);
//   * spmv        — 9-point 2-D Laplace stencil;
//   * dot, axpy   — BLAS-1 baselines for context.
// Every record carries a "simd" field naming the ISA the build's
// kernel layer dispatched to (avx512 / avx2 / neon / scalar, see
// util/simd.hpp); rebuild with -DTSBO_DISABLE_SIMD=ON to bench the
// scalar fallback side of the on/off dimension.
// Every configuration is run twice and compared bitwise (the kernel
// layer's fixed-chunk reductions must make repeated runs identical),
// and against the 1-thread result (which must also match bitwise).
//
//   bench_kernels [--m=100000] [--s=10,20,30] [--wide=120,240]
//                 [--wide_m=20000] [--nx=512] [--reps=5]
//                 [--threads=<list>] [--json=BENCH_kernels.json]
//
// --threads defaults to a power-of-two sweep 1..hardware_concurrency.
// The JSON output gives future PRs a perf trajectory to regress against.

#include "dense/blas1.hpp"
#include "dense/blas3.hpp"
#include "dense/dd.hpp"
#include "par/config.hpp"
#include "util/simd.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace tsbo;
using dense::index_t;
using dense::Matrix;

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Xoshiro256 rng(seed);
  util::fill_normal(rng, m.data());
  return m;
}

struct Measurement {
  std::string kernel;
  std::string shape;
  int threads = 1;
  std::string simd = tsbo::simd::isa_name();  // compile-time ISA dispatch
  double seconds = 0.0;   // best of reps
  double gflops = 0.0;
  bool deterministic = false;   // repeated runs bit-identical
  bool matches_serial = false;  // bit-identical to the 1-thread result
};

/// One benchmarked kernel: run() fills `out` from fixed inputs.
struct Case {
  std::string kernel;
  std::string shape;
  double flops = 0.0;
  std::function<void(std::vector<double>& out)> run;
};

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<int> default_thread_sweep() {
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> sweep;
  for (int t = 1; t < hw; t *= 2) sweep.push_back(t);
  sweep.push_back(hw);
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  par::configure_from_cli(cli);
  const auto m = static_cast<index_t>(cli.get_int("m", 100000));
  const std::vector<int> widths = cli.get_int_list("s", {10, 20, 30});
  // Block-solver panel widths: bs * k flat columns (e.g. bs=60 at
  // k in {2, 4}); shorter m keeps the per-rep flop count bounded.
  const std::vector<int> wide_widths = cli.get_int_list("wide", {120, 240});
  const auto wide_m = static_cast<index_t>(cli.get_int("wide_m", 20000));
  const auto nx = static_cast<sparse::ord>(cli.get_int("nx", 512));
  const int reps = cli.get_int("reps", 5);
  std::vector<int> threads = cli.get_int_list("threads", default_thread_sweep());
  // The serial run is the bitwise reference and speedup baseline, so
  // force it to lead the sweep.
  if (std::find(threads.begin(), threads.end(), 1) != threads.begin()) {
    threads.erase(std::remove(threads.begin(), threads.end(), 1), threads.end());
    threads.insert(threads.begin(), 1);
  }
  const std::string json_path = cli.get("json", "BENCH_kernels.json");
  cli.reject_unknown();

  std::printf(
      "# Kernel-layer thread sweep: gemm_tn / gemm_tn_dd / gemm_nn "
      "(m = %d), spmv (%d x %d 9-pt Laplace), dot, axpy\n"
      "# simd: %s\n"
      "# threads:", m, nx, nx, tsbo::simd::isa_name());
  for (const int t : threads) std::printf(" %d", t);
  std::printf("  (reps = %d, best-of)\n\n", reps);

  std::vector<Case> cases;
  for (const int s : widths) {
    const auto sc = static_cast<index_t>(s);
    Matrix a = random_matrix(m, sc, 1);
    Matrix b = random_matrix(m, sc, 2);
    cases.push_back(Case{
        "gemm_tn", std::to_string(m) + "x" + std::to_string(s),
        2.0 * m * s * s,
        [a = std::move(a), b = std::move(b), m, sc](std::vector<double>& out) {
          out.assign(static_cast<std::size_t>(sc) * sc, 0.0);
          dense::MatrixView c{out.data(), sc, sc, sc};
          dense::gemm_tn(1.0, a.view(), b.view(), 0.0, c);
        }});
  }
  for (const int s : widths) {
    const auto sc = static_cast<index_t>(s);
    Matrix a = random_matrix(m, sc, 7);
    Matrix b = random_matrix(m, sc, 8);
    cases.push_back(Case{
        "gemm_tn_dd", std::to_string(m) + "x" + std::to_string(s),
        2.0 * m * s * s,
        [a = std::move(a), b = std::move(b), sc](std::vector<double>& out) {
          // hi and lo planes share one buffer so the bitwise checks
          // cover the full pair-form result.
          const auto plane = static_cast<std::size_t>(sc) * sc;
          out.assign(2 * plane, 0.0);
          dense::MatrixView hi{out.data(), sc, sc, sc};
          dense::MatrixView lo{out.data() + plane, sc, sc, sc};
          dense::gemm_tn_dd(a.view(), b.view(), hi, lo);
        }});
  }
  for (const int s : widths) {
    const auto sc = static_cast<index_t>(s);
    Matrix q = random_matrix(m, sc, 3);
    Matrix r = random_matrix(sc, sc, 4);
    Matrix v0 = random_matrix(m, sc, 5);
    cases.push_back(Case{
        "gemm_nn", std::to_string(m) + "x" + std::to_string(s),
        2.0 * m * s * s,
        [q = std::move(q), r = std::move(r), v0 = std::move(v0), m,
         sc](std::vector<double>& out) {
          out.assign(v0.data().begin(), v0.data().end());
          dense::MatrixView v{out.data(), m, sc, m};
          dense::gemm_nn(-1.0, q.view(), r.view(), 1.0, v);
        }});
  }
  // Wide-panel (block rhs=k) shapes: same kernels, flat panel width
  // bs * k.  These are the shapes the kColBlock small-operand tiling
  // targets; the bitwise columns double as proof the tiling preserved
  // the untiled accumulation order.
  for (const int s : wide_widths) {
    const auto sc = static_cast<index_t>(s);
    Matrix a = random_matrix(wide_m, sc, 11);
    Matrix b = random_matrix(wide_m, sc, 12);
    cases.push_back(Case{
        "gemm_tn_wide", std::to_string(wide_m) + "x" + std::to_string(s),
        2.0 * wide_m * s * s,
        [a = std::move(a), b = std::move(b), sc](std::vector<double>& out) {
          out.assign(static_cast<std::size_t>(sc) * sc, 0.0);
          dense::MatrixView c{out.data(), sc, sc, sc};
          dense::gemm_tn(1.0, a.view(), b.view(), 0.0, c);
        }});
  }
  for (const int s : wide_widths) {
    const auto sc = static_cast<index_t>(s);
    Matrix q = random_matrix(wide_m, sc, 13);
    Matrix r = random_matrix(sc, sc, 14);
    Matrix v0 = random_matrix(wide_m, sc, 15);
    cases.push_back(Case{
        "gemm_nn_wide", std::to_string(wide_m) + "x" + std::to_string(s),
        2.0 * wide_m * s * s,
        [q = std::move(q), r = std::move(r), v0 = std::move(v0), wide_m,
         sc](std::vector<double>& out) {
          out.assign(v0.data().begin(), v0.data().end());
          dense::MatrixView v{out.data(), wide_m, sc, wide_m};
          dense::gemm_nn(-1.0, q.view(), r.view(), 1.0, v);
        }});
  }
  {
    sparse::CsrMatrix a = sparse::laplace2d_9pt(nx, nx);
    const double flops = 2.0 * static_cast<double>(a.nnz());
    std::vector<double> x(static_cast<std::size_t>(a.rows), 1.0);
    cases.push_back(Case{
        "spmv", std::to_string(a.rows) + " rows",
        flops,
        [a = std::move(a), x = std::move(x)](std::vector<double>& out) {
          out.assign(x.size(), 0.0);
          sparse::spmv(a, x, out);
        }});
  }
  {
    Matrix a = random_matrix(m, 2, 6);
    cases.push_back(Case{
        "dot", std::to_string(m),
        2.0 * m,
        [a = std::move(a), m](std::vector<double>& out) {
          out.assign(1, 0.0);
          const std::span<const double> x(a.col(0), static_cast<std::size_t>(m));
          const std::span<const double> y(a.col(1), static_cast<std::size_t>(m));
          out[0] = dense::dot(x, y);
        }});
  }
  {
    // axpy mutates y, so every timed run restores the baseline via the
    // O(m) assign below; the reported GFLOP/s therefore includes one
    // baseline copy per run (conservative, but stable — the perf gate
    // compares like against like).
    Matrix a = random_matrix(m, 2, 9);
    cases.push_back(Case{
        "axpy", std::to_string(m),
        2.0 * m,
        [a = std::move(a), m](std::vector<double>& out) {
          out.assign(a.col(1), a.col(1) + m);
          const std::span<const double> x(a.col(0), static_cast<std::size_t>(m));
          dense::axpy(0.5, x, std::span<double>(out));
        }});
  }

  util::Table table({"kernel", "shape", "threads", "best (ms)", "GFLOP/s",
                     "speedup", "bitwise"});
  std::vector<Measurement> results;

  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& bench = cases[ci];
    std::vector<double> serial_out;
    double serial_seconds = 0.0;
    for (const int t : threads) {
      par::set_num_threads(static_cast<unsigned>(t));
      std::vector<double> out1, out2;
      bench.run(out1);  // warm-up + reference
      bench.run(out2);
      Measurement meas;
      meas.kernel = bench.kernel;
      meas.shape = bench.shape;
      meas.threads = t;
      meas.deterministic = bits_equal(out1, out2);
      if (t == threads.front()) serial_out = out1;
      meas.matches_serial = bits_equal(out1, serial_out);

      double best = -1.0;
      for (int rep = 0; rep < reps; ++rep) {
        util::WallTimer timer;
        bench.run(out2);
        const double sec = timer.seconds();
        if (best < 0.0 || sec < best) best = sec;
      }
      meas.seconds = best;
      meas.gflops = best > 0.0 ? bench.flops / best * 1e-9 : 0.0;
      if (t == threads.front()) serial_seconds = best;

      table.row()
          .add(meas.kernel)
          .add(meas.shape)
          .add(t)
          .add(best * 1e3, 3)
          .add(meas.gflops, 2)
          .add(util::speedup_str(serial_seconds, best))
          .add(meas.deterministic && meas.matches_serial ? "ok" : "MISMATCH");
      results.push_back(meas);
    }
    if (ci + 1 < cases.size()) table.separator();
  }
  par::set_num_threads(0);  // restore auto
  table.print();

  bool all_ok = true;
  for (const Measurement& meas : results) {
    all_ok = all_ok && meas.deterministic && meas.matches_serial;
  }
  std::printf("\n# bitwise determinism (repeat + vs serial): %s\n",
              all_ok ? "ok" : "MISMATCH");

  if (json_path != "none") {
    util::JsonWriter w;
    w.begin_object();
    w.kv("bench", "kernels").kv("m", m);
    w.kv("simd", tsbo::simd::isa_name());
    w.kv("hardware_concurrency", std::thread::hardware_concurrency());
    w.key("results").begin_array();
    for (const Measurement& meas : results) {
      w.begin_object();
      w.kv("kernel", meas.kernel)
          .kv("shape", meas.shape)
          .kv("simd", meas.simd)
          .kv("threads", meas.threads)
          .kv("seconds", meas.seconds)
          .kv("gflops", meas.gflops)
          .kv("deterministic", meas.deterministic)
          .kv("matches_serial", meas.matches_serial);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    try {
      util::write_text_file(json_path, w.str() + "\n");
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}
